module Sim = Secrep_sim.Sim
module Work_queue = Secrep_sim.Work_queue
module Stats = Secrep_sim.Stats
module Trace = Secrep_sim.Trace
module Event = Secrep_sim.Event
module Span = Secrep_sim.Span
module Prng = Secrep_crypto.Prng
module Sig_scheme = Secrep_crypto.Sig_scheme
module Merkle = Secrep_crypto.Merkle
module Store = Secrep_store.Store
module Oplog = Secrep_store.Oplog
module Query = Secrep_store.Query
module Query_eval = Secrep_store.Query_eval
module Query_result = Secrep_store.Query_result
module Canonical = Secrep_store.Canonical

type read_reply = { result : Query_result.t; pledge : Pledge.t }

(* One read waiting in a pledge batch: everything needed to build its
   Merkle leaf and, after the root is signed, its reply. *)
type intent = {
  i_request : int;  (* lineage id of the read this pledge answers *)
  i_query : Query.t;
  i_result : Query_result.t;
  i_digest : string;
  i_keepalive : Keepalive.t;
  i_nonce : int;  (* client nonce echoed into the signed payload (0 = off) *)
  i_lied : bool;
  i_forge : bool;  (* Bad_signature attacker: ship a forged root signature *)
  i_reply : read_reply option -> unit;
}

type t = {
  sim : Sim.t;
  rng : Prng.t;
  id : int;
  config : Config.t;
  key : Sig_scheme.keypair;
  store : Store.t;
  work : Work_queue.t;
  stats : Stats.t;
  trace : Trace.t option;
  spans : Span.t option;
  mutable master_id : int;
  mutable behavior : Fault.behavior;
  mutable keepalive : Keepalive.t option;
  mutable excluded : bool;
  mutable resync : (slave_id:int -> from_version:int -> unit) option;
  mutable reads_served : int;
  mutable lies_told : int;
  mutable pending : intent list;  (* newest first *)
  mutable batch_gen : int;  (* bumped on every flush; stales window timers *)
  attack : Fault.state;  (* strategic-mode state: pressure EWMA, bursts *)
  mutable replay_ammo : (Query_result.t * Pledge.t) option;
      (* last honestly-signed reply, saved by a Replay_pledge attacker *)
  mutable last_lie : (int * string * float) option;
      (* (client, query digest, time) of the last lie — near-miss sensing *)
}

let create sim ~rng ~id ~config ~master_id ~stats ?trace ?spans () =
  {
    sim;
    rng;
    id;
    config;
    key = Sig_scheme.generate config.Config.scheme rng;
    store = Store.create ();
    work = Work_queue.create sim ();
    stats;
    trace;
    spans;
    master_id;
    behavior = Fault.Honest;
    keepalive = None;
    excluded = false;
    resync = None;
    reads_served = 0;
    lies_told = 0;
    pending = [];
    batch_gen = 0;
    attack = Fault.initial_state ();
    replay_ammo = None;
    last_lie = None;
  }

let source t = Printf.sprintf "slave-%d" t.id

let emit t event =
  match t.trace with
  | Some tr -> Trace.emit tr ~time:(Sim.now t.sim) ~source:(source t) event
  | None -> ()

let span t ~start ~duration name =
  match t.spans with
  | Some spans -> Span.record spans ~source:(source t) ~start ~duration name
  | None -> ()

let id t = t.id
let public t = Sig_scheme.public_of t.key
let master_id t = t.master_id
let set_master t ~master_id = t.master_id <- master_id
let set_behavior t behavior = t.behavior <- behavior
let behavior t = t.behavior
let on_resync_needed t f = t.resync <- Some f

(* Exclusions are public (corrective actions propagate); an [Adaptive]
   attacker reads them as audit pressure and lies less while hot. *)
let note_peer_excluded t =
  Fault.bump_pressure t.attack ~now:(Sim.now t.sim) ~amount:1.0

let dropping_updates t =
  match t.behavior with
  | Fault.Malicious { mode = Fault.Stale_state; from_time; _ } -> Sim.now t.sim >= from_time
  | Fault.Honest | Fault.Malicious _ -> false

let receive_update t ~entries ~keepalive =
  if not t.excluded then begin
    (* Links deliver with random latency, so packets can arrive out of
       order; never let a delayed older keep-alive shadow a fresher
       one. *)
    (match t.keepalive with
    | Some prev when prev.Keepalive.timestamp > keepalive.Keepalive.timestamp -> ()
    | Some _ | None -> t.keepalive <- Some keepalive);
    if not (dropping_updates t) then begin
      let before = Store.version t.store in
      List.iter
        (fun (entry : Oplog.entry) ->
          if entry.version = Store.version t.store + 1 then Store.apply_entry t.store entry
          (* entry.version <> current + 1: duplicate or gap, ignore /
             handled below *))
        entries;
      let after = Store.version t.store in
      if after > before then
        emit t
          (Event.State_update_applied { slave = t.id; from_version = before; to_version = after });
      (* The keep-alive names the master's current version, so any
         shortfall — whether the gap showed up inside [entries] or an
         earlier update was lost on the wire — triggers a resync.
         Periodic keep-alives retry this for free until it heals. *)
      let target =
        match t.keepalive with
        | Some ka -> ka.Keepalive.version
        | None -> keepalive.Keepalive.version
      in
      if after < target then begin
        Stats.incr t.stats "slave.resync_requests";
        match t.resync with
        | Some f -> f ~slave_id:t.id ~from_version:after
        | None -> ()
      end
    end
  end

let version t = Store.version t.store
let latest_keepalive t = t.keepalive

let is_available t ~now =
  (not t.excluded)
  && begin
       match t.keepalive with
       | Some ka -> Keepalive.is_fresh ka ~now ~max_latency:t.config.Config.max_latency
       | None -> false
     end

let exclude t = t.excluded <- true
let is_excluded t = t.excluded

let reinstate t ~checkpoint ~keepalive =
  match Store.of_bytes checkpoint with
  | Error msg -> Error ("Slave.reinstate: bad checkpoint: " ^ msg)
  | Ok fresh ->
    Store.assign t.store ~from:fresh;
    t.keepalive <- Some keepalive;
    t.behavior <- Fault.Honest;
    t.excluded <- false;
    Ok ()
let reads_served t = t.reads_served
let lies_told t = t.lies_told
let work t = t.work

(* A forged digest over the true result would fail the client's own
   hash check, so the attacker fabricates a *result* and signs its true
   hash: internally consistent, only re-execution exposes it.
   Colluders derive the fabrication from a shared tag and the query, so
   they agree with each other. *)
let fabricated_result t ~mode ~query =
  let body =
    match mode with
    | Fault.Collude tag ->
      Printf.sprintf "collusion-%s-%s" tag
        (Secrep_crypto.Hex.encode (Canonical.query_digest query))
    | Fault.Corrupt_result | Fault.Stale_state | Fault.Bad_signature | Fault.Omit_result
    | Fault.Replay_pledge | Fault.Equivocate _ | Fault.Adaptive _ | Fault.Flaky_omit _ ->
      Printf.sprintf "corrupted-%d-%d" t.id t.lies_told
  in
  Query_result.Agg (Secrep_store.Value.String body)

(* -- Merkle-batched pledge signing ----------------------------------- *)

let flush_batch t =
  match t.pending with
  | [] -> ()
  | pending ->
    let intents = List.rev pending in
    t.pending <- [];
    t.batch_gen <- t.batch_gen + 1;
    let n = List.length intents in
    let start = Sim.now t.sim in
    (* One signature amortized over the whole batch. *)
    span t ~start ~duration:t.config.Config.signature_cost "sign";
    Work_queue.submit t.work ~cost:t.config.Config.signature_cost (fun () ->
        if t.excluded then List.iter (fun i -> i.i_reply None) intents
        else begin
          Stats.incr t.stats "slave.signatures";
          let leaves =
            List.map
              (fun i ->
                Pledge.payload ~nonce:i.i_nonce ~slave_id:t.id ~query:i.i_query
                  ~result_digest:i.i_digest ~keepalive:i.i_keepalive ())
              intents
          in
          let tree = Merkle.build leaves in
          let root = Merkle.root tree in
          let signature = Pledge.sign_batch ~slave_key:t.key ~slave_id:t.id ~root in
          let version =
            match t.keepalive with
            | Some ka -> ka.Keepalive.version
            | None -> (List.hd intents).i_keepalive.Keepalive.version
          in
          emit t (Event.Pledge_batch_signed { slave = t.id; version; batch = n });
          List.iteri
            (fun idx i ->
              let proof = Merkle.prove tree idx in
              let pledge =
                {
                  Pledge.slave_id = t.id;
                  query = i.i_query;
                  result_digest = i.i_digest;
                  keepalive = i.i_keepalive;
                  nonce = i.i_nonce;
                  signature = (if i.i_forge then "forged" else signature);
                  mode = Pledge.Batched { root; proof };
                }
              in
              t.reads_served <- t.reads_served + 1;
              Stats.incr t.stats "slave.reads_served";
              emit t
                (Event.Pledge_signed
                   {
                     slave = t.id;
                     request = i.i_request;
                     version = Pledge.version pledge;
                     lied = i.i_lied;
                   });
              i.i_reply (Some { result = i.i_result; pledge }))
            intents
        end)

let enqueue_intent t intent =
  let was_empty = t.pending = [] in
  t.pending <- intent :: t.pending;
  if List.length t.pending >= t.config.Config.pledge_batch_size then flush_batch t
  else if was_empty then begin
    (* First pledge of a fresh batch arms the window timer; the
       generation check lets a size-triggered flush stale it. *)
    let gen = t.batch_gen in
    ignore
      (Sim.schedule t.sim ~delay:t.config.Config.pledge_batch_window (fun () ->
           if t.batch_gen = gen then flush_batch t))
  end

let handle_read t ~client ~request ~query ~reply =
  let now = Sim.now t.sim in
  if t.excluded then reply None
  else begin
    match t.keepalive with
    | None -> reply None
    | Some keepalive ->
      (* An honest slave serves only with a fresh keep-alive *and* a
         store caught up to the version that keep-alive names: a slave
         that missed an update on the wire would otherwise sign pledges
         claiming the new version over old state — indistinguishable
         from a Stale_state attacker to the auditor.  "It should stop
         handling user requests until back in sync" (§3); an attacker
         ignores that rule. *)
      let honest_available =
        Keepalive.is_fresh keepalive ~now ~max_latency:t.config.Config.max_latency
        && keepalive.Keepalive.version = Store.version t.store
      in
      let nonce = if t.config.Config.read_nonces then request else 0 in
      let qdigest = Secrep_crypto.Hex.encode (Canonical.query_digest query) in
      (* Near-miss sensing: the client we just lied to re-asking the
         same query within the freshness window means a verification or
         double-check went against us.  An [Adaptive] attacker reacts
         by going quiet. *)
      (match (t.behavior, t.last_lie) with
      | Fault.Malicious { mode = Fault.Adaptive _; _ }, Some (c, qd, tl)
        when c = client && qd = qdigest
             && now -. tl <= 2.0 *. t.config.Config.max_latency ->
        Fault.note_near_miss t.attack ~now ~cooldown:(2.0 *. t.config.Config.max_latency);
        Fault.bump_pressure t.attack ~now ~amount:0.5;
        t.last_lie <- None
      | _ -> ());
      let decision = Fault.decide t.behavior ~now ~client t.attack t.rng in
      let behavior_mode_name =
        match t.behavior with
        | Fault.Malicious { mode; _ } -> Fault.mode_name mode
        | Fault.Honest -> ""
      in
      (match decision with
      | Fault.Suppress reason ->
        emit t
          (Event.Attack_suppressed { slave = t.id; mode = behavior_mode_name; reason })
      | Fault.Act _ | Fault.Pass -> ());
      (* Replay fast path: skip execution and signing entirely, resend
         the saved honest reply.  Its pledge is bound to the old read's
         nonce (or none), so nonce-checking clients reject it. *)
      match
        (match decision with Fault.Act Fault.Replay_pledge -> t.replay_ammo | _ -> None)
      with
      | Some (r_result, r_pledge) ->
        t.reads_served <- t.reads_served + 1;
        Stats.incr t.stats "slave.reads_served";
        t.lies_told <- t.lies_told + 1;
        Stats.incr t.stats "slave.lies_told";
        emit t
          (Event.Attack_launched
             { slave = t.id; mode = behavior_mode_name; client; request });
        t.last_lie <- Some (client, qdigest, now);
        reply (Some { result = r_result; pledge = r_pledge })
      | None ->
      (* Map the strategic modes onto the concrete lie machinery: the
         equivocator and the adaptive liar fabricate results like
         [Corrupt_result]; a flaky burst omits; a replay attacker with
         no ammo yet plays honest (and stocks up below). *)
      let lie, strategic =
        match decision with
        | Fault.Pass | Fault.Suppress _ -> (None, false)
        | Fault.Act mode -> (
          match mode with
          | Fault.Corrupt_result | Fault.Collude _ | Fault.Stale_state
          | Fault.Bad_signature | Fault.Omit_result ->
            (Some mode, false)
          | Fault.Replay_pledge -> (None, false)
          | Fault.Equivocate _ | Fault.Adaptive _ -> (Some Fault.Corrupt_result, true)
          | Fault.Flaky_omit _ -> (Some Fault.Omit_result, true))
      in
      if strategic then begin
        emit t
          (Event.Attack_launched
             { slave = t.id; mode = behavior_mode_name; client; request });
        t.last_lie <- Some (client, qdigest, now)
      end;
      let stock_ammo =
        (* honest read served by a replay attacker: remember the reply *)
        lie = None
        &&
        match t.behavior with
        | Fault.Malicious { mode = Fault.Replay_pledge; _ } -> true
        | Fault.Honest | Fault.Malicious _ -> false
      in
      let reply =
        if not stock_ammo then reply
        else
          fun r ->
            (match r with
            | Some rr -> t.replay_ammo <- Some (rr.result, rr.pledge)
            | None -> ());
            reply r
      in
      if (not honest_available) && lie = None then begin
        Stats.incr t.stats "slave.refused_stale";
        reply None
      end
      else begin
        match Query_eval.execute t.store query with
        | Error _ ->
          Stats.incr t.stats "slave.bad_queries";
          reply None
        | Ok { result; scanned } ->
          let exec_cost =
            Query_eval.cost_seconds ~scanned ~cost_class:(Query.cost_class query)
              ~per_doc:t.config.Config.per_doc_cost
          in
          if t.config.Config.pledge_batch_size > 1 then begin
            (* Batched mode: the read only pays evaluation here; the
               signature cost is charged once per batch at flush. *)
            span t ~start:now ~duration:exec_cost "query_eval";
            Work_queue.submit t.work ~cost:exec_cost (fun () ->
                if t.excluded then reply None
                else begin
                  let honest_digest = Canonical.result_digest result in
                  match lie with
                  | Some Fault.Omit_result ->
                    (* silence; the client times out *)
                    t.reads_served <- t.reads_served + 1;
                    Stats.incr t.stats "slave.reads_served";
                    t.lies_told <- t.lies_told + 1;
                    Stats.incr t.stats "slave.lies_told"
                  | None ->
                    enqueue_intent t
                      {
                        i_request = request;
                        i_query = query;
                        i_result = result;
                        i_digest = honest_digest;
                        i_keepalive = keepalive;
                        i_nonce = nonce;
                        i_lied = false;
                        i_forge = false;
                        i_reply = reply;
                      }
                  | Some mode ->
                    t.lies_told <- t.lies_told + 1;
                    Stats.incr t.stats "slave.lies_told";
                    let intent =
                      match mode with
                      | Fault.Omit_result | Fault.Flaky_omit _ | Fault.Replay_pledge ->
                        assert false
                      | Fault.Bad_signature ->
                        {
                          i_request = request;
                          i_query = query;
                          i_result = result;
                          i_digest = honest_digest;
                          i_keepalive = keepalive;
                          i_nonce = nonce;
                          i_lied = true;
                          i_forge = true;
                          i_reply = reply;
                        }
                      | Fault.Corrupt_result | Fault.Collude _ | Fault.Equivocate _
                      | Fault.Adaptive _ ->
                        let fake = fabricated_result t ~mode ~query in
                        {
                          i_request = request;
                          i_query = query;
                          i_result = fake;
                          i_digest = Canonical.result_digest fake;
                          i_keepalive = keepalive;
                          i_nonce = nonce;
                          i_lied = true;
                          i_forge = false;
                          i_reply = reply;
                        }
                      | Fault.Stale_state ->
                        (* Honest-looking reply over frozen state *is*
                           the lie (see [dropping_updates]). *)
                        {
                          i_request = request;
                          i_query = query;
                          i_result = result;
                          i_digest = honest_digest;
                          i_keepalive = keepalive;
                          i_nonce = nonce;
                          i_lied = true;
                          i_forge = false;
                          i_reply = reply;
                        }
                    in
                    enqueue_intent t intent
                end)
          end
          else begin
          let cost = exec_cost +. t.config.Config.signature_cost in
          (* Span durations follow the cost model: evaluation first,
             then the pledge signature. *)
          span t ~start:now ~duration:exec_cost "query_eval";
          span t ~start:(now +. exec_cost) ~duration:t.config.Config.signature_cost "sign";
          Work_queue.submit t.work ~cost (fun () ->
              if t.excluded then reply None
              else begin
                t.reads_served <- t.reads_served + 1;
                Stats.incr t.stats "slave.reads_served";
                let honest_digest = Canonical.result_digest result in
                match lie with
                | None ->
                  let pledge =
                    Pledge.make ~nonce ~slave_key:t.key ~slave_id:t.id ~query
                      ~result_digest:honest_digest ~keepalive ()
                  in
                  Stats.incr t.stats "slave.signatures";
                  emit t
                    (Event.Pledge_signed
                       { slave = t.id; request; version = Pledge.version pledge; lied = false });
                  reply (Some { result; pledge })
                | Some mode ->
                  t.lies_told <- t.lies_told + 1;
                  Stats.incr t.stats "slave.lies_told";
                  (match mode with
                  | Fault.Omit_result | Fault.Flaky_omit _ | Fault.Replay_pledge -> ()
                  | Fault.Bad_signature | Fault.Corrupt_result | Fault.Collude _
                  | Fault.Stale_state | Fault.Equivocate _ | Fault.Adaptive _ ->
                    Stats.incr t.stats "slave.signatures";
                    emit t
                      (Event.Pledge_signed
                         {
                           slave = t.id;
                           request;
                           version = keepalive.Keepalive.version;
                           lied = true;
                         }));
                  (match mode with
                  | Fault.Omit_result | Fault.Flaky_omit _ | Fault.Replay_pledge ->
                    () (* silence; the client times out *)
                  | Fault.Bad_signature ->
                    let pledge =
                      Pledge.make ~nonce ~slave_key:t.key ~slave_id:t.id ~query
                        ~result_digest:honest_digest ~keepalive ()
                    in
                    reply
                      (Some { result; pledge = { pledge with Pledge.signature = "forged" } })
                  | Fault.Corrupt_result | Fault.Collude _ | Fault.Equivocate _
                  | Fault.Adaptive _ ->
                    let fake = fabricated_result t ~mode ~query in
                    let pledge =
                      Pledge.make ~nonce ~slave_key:t.key ~slave_id:t.id ~query
                        ~result_digest:(Canonical.result_digest fake) ~keepalive ()
                    in
                    reply (Some { result = fake; pledge })
                  | Fault.Stale_state ->
                    (* The store silently stopped applying updates (see
                       [dropping_updates]); the honest-looking reply over
                       frozen state *is* the lie. *)
                    let pledge =
                      Pledge.make ~nonce ~slave_key:t.key ~slave_id:t.id ~query
                        ~result_digest:honest_digest ~keepalive ()
                    in
                    reply (Some { result; pledge }))
              end)
          end
      end
  end
