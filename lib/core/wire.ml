module Codec = Secrep_store.Codec
module Writer = Codec.Writer
module Reader = Codec.Reader
module Sig_scheme = Secrep_crypto.Sig_scheme
module Merkle = Secrep_crypto.Merkle

let write_keepalive w (ka : Keepalive.t) =
  Writer.bytes w ka.content_id;
  Writer.varint w ka.version;
  Writer.float w ka.timestamp;
  Writer.varint w ka.master_id;
  Writer.bytes w ka.signature

let read_keepalive r : Keepalive.t =
  let content_id = Reader.bytes r in
  let version = Reader.varint r in
  let timestamp = Reader.float r in
  let master_id = Reader.varint r in
  let signature = Reader.bytes r in
  { content_id; version; timestamp; master_id; signature }

let encode_keepalive ka =
  let w = Writer.create () in
  write_keepalive w ka;
  Writer.contents w

let decode_keepalive s = Reader.run s read_keepalive

(* Mode tag first: 0 = single, 1 = batched (root + inclusion proof
   follow the common fields); 2 and 3 are their nonce-bearing variants
   with the nonce varint after the slave id.  Nonce-0 pledges keep the
   legacy tags so pre-hardening frames stay byte-identical.  Proof
   sides are one byte each: 0 = the sibling hashes in from the left,
   1 = from the right. *)
let encode_pledge (p : Pledge.t) =
  let w = Writer.create () in
  (match (p.mode, p.nonce) with
  | Pledge.Single, 0 -> Writer.u8 w 0
  | Pledge.Batched _, 0 -> Writer.u8 w 1
  | Pledge.Single, _ -> Writer.u8 w 2
  | Pledge.Batched _, _ -> Writer.u8 w 3);
  Writer.varint w p.slave_id;
  if p.nonce <> 0 then Writer.varint w p.nonce;
  Writer.bytes w (Codec.encode_query p.query);
  Writer.bytes w p.result_digest;
  write_keepalive w p.keepalive;
  Writer.bytes w p.signature;
  (match p.mode with
  | Pledge.Single -> ()
  | Pledge.Batched { root; proof } ->
    Writer.bytes w root;
    Writer.varint w proof.Merkle.leaf_index;
    Writer.varint w (List.length proof.Merkle.path);
    List.iter
      (fun (sibling, side) ->
        Writer.u8 w (match side with `Left -> 0 | `Right -> 1);
        Writer.bytes w sibling)
      proof.Merkle.path);
  Writer.contents w

let decode_pledge s =
  Reader.run s (fun r ->
      let tag = Reader.u8 r in
      if tag < 0 || tag > 3 then
        raise (Reader.Malformed (Printf.sprintf "pledge mode tag %d" tag));
      let slave_id = Reader.varint r in
      let nonce =
        if tag >= 2 then begin
          let n = Reader.varint r in
          if n = 0 then raise (Reader.Malformed "nonced pledge with nonce 0");
          n
        end
        else 0
      in
      let query_bytes = Reader.bytes r in
      let query =
        match Codec.decode_query query_bytes with
        | Ok q -> q
        | Error msg -> raise (Reader.Malformed ("pledge query: " ^ msg))
      in
      let result_digest = Reader.bytes r in
      let keepalive = read_keepalive r in
      let signature = Reader.bytes r in
      let mode =
        if tag = 0 || tag = 2 then Pledge.Single
        else begin
          let root = Reader.bytes r in
          let leaf_index = Reader.varint r in
          let n = Reader.varint r in
          if leaf_index < 0 || n < 0 then
            raise (Reader.Malformed "pledge proof: negative length");
          let rec read_path k acc =
            if k = 0 then List.rev acc
            else begin
              let side =
                match Reader.u8 r with
                | 0 -> `Left
                | 1 -> `Right
                | b -> raise (Reader.Malformed (Printf.sprintf "pledge proof side %d" b))
              in
              let sibling = Reader.bytes r in
              read_path (k - 1) ((sibling, side) :: acc)
            end
          in
          let path = read_path n [] in
          Pledge.Batched { root; proof = { Merkle.leaf_index; path } }
        end
      in
      { Pledge.slave_id; query; result_digest; keepalive; nonce; signature; mode })

let encode_certificate (c : Certificate.t) =
  let w = Writer.create () in
  Writer.bytes w c.content_id;
  Writer.varint w c.master_id;
  Writer.bytes w c.address;
  Writer.bytes w (Sig_scheme.encode_public c.master_public);
  Writer.bytes w c.signature;
  Writer.contents w

let decode_certificate s =
  Reader.run s (fun r ->
      let content_id = Reader.bytes r in
      let master_id = Reader.varint r in
      let address = Reader.bytes r in
      let master_public =
        match Sig_scheme.decode_public (Reader.bytes r) with
        | Ok p -> p
        | Error msg -> raise (Reader.Malformed ("certificate key: " ^ msg))
      in
      let signature = Reader.bytes r in
      { Certificate.content_id; master_id; address; master_public; signature })

let pledge_size p = String.length (encode_pledge p)
let keepalive_size ka = String.length (encode_keepalive ka)

let update_size entries ka =
  String.length (Codec.encode_entries entries) + keepalive_size ka
