(** The assembled system: masters + slaves + clients + auditor over a
    simulated WAN, with the setup phase, corrective action, ground-truth
    tracking and metric collection wired in.  This is the entry point
    examples, tests and experiments drive. *)

type net_profile = {
  master_master : Secrep_sim.Latency.t;
  master_slave : Secrep_sim.Latency.t;
  client_slave : Secrep_sim.Latency.t;
  client_master : Secrep_sim.Latency.t;
  client_auditor : Secrep_sim.Latency.t;
  loss : float;
}

val default_net : net_profile
(** A 2003-flavoured WAN: ~40ms master<->master, ~10ms client<->slave
    (the "closest slave" of the setup phase), ~50ms client<->master. *)

val lan_net : net_profile
(** Sub-millisecond everywhere; for protocol-logic tests. *)

type t

val create :
  ?n_masters:int ->
  ?slaves_per_master:int ->
  ?n_clients:int ->
  ?n_auditors:int ->
  ?config:Config.t ->
  ?net:net_profile ->
  ?seed:int64 ->
  ?trace_capacity:int ->
  ?span_capacity:int ->
  ?track_ground_truth:bool ->
  ?client_max_latency:(int -> float option) ->
  unit ->
  t
(** Defaults: 3 masters, 4 slaves each, 10 clients, seed 1.  Creation
    runs the setup phase for every client and starts keep-alives.
    [track_ground_truth] (default true) keeps per-version oracle
    snapshots so accepted reads can be labelled correct/wrong.
    [client_max_latency] implements the §3.2 refinement: clients it
    returns [Some bound] for use their own freshness bound instead of
    the system-wide [max_latency]. *)

val sim : t -> Secrep_sim.Sim.t
val config : t -> Config.t
val stats : t -> Secrep_sim.Stats.t
val trace : t -> Secrep_sim.Trace.t

val spans : t -> Secrep_sim.Span.t
(** Phase-duration spans (sign, verify, query_eval, network, audit)
    collected across every component; feeds the ["span.*"] histograms
    of {!stats}. *)

val corrective : t -> Corrective.t

val auditor : t -> Auditor.t
(** The first auditor (the common single-auditor case). *)

val auditors : t -> Auditor.t list
(** All auditors; with [n_auditors > 1] (§3.4's "add extra auditors")
    pledges shard across them by query digest. *)

val directory : t -> Directory.t
val content_id : t -> string

val run_until : t -> float -> unit
val run_for : t -> float -> unit

val n_masters : t -> int
val n_slaves : t -> int
val n_clients : t -> int

val master : t -> int -> Master.t
val slave : t -> int -> Slave.t
val client : t -> int -> Client.t

val master_of_client : t -> int -> int
val slave_of_client : t -> int -> int
val master_of_slave : t -> int -> int

val load_content : t -> (string * Secrep_store.Document.t) list -> unit
(** Bootstrap the initial content onto every replica (before, or
    between, runs; bypasses the write path and does not count against
    the write-rate limit). *)

val read :
  t ->
  client:int ->
  ?level:Security_level.t ->
  ?mode:Client.read_mode ->
  Secrep_store.Query.t ->
  on_done:(Client.read_report -> unit) ->
  unit
(** Issues the read and additionally labels the accepted result
    against the oracle (stats [system.accepted_correct] /
    [system.accepted_wrong]) and records latency histograms. *)

val write :
  t ->
  client:int ->
  Secrep_store.Oplog.op ->
  on_done:(Master.write_ack -> unit) ->
  unit

val set_slave_behavior : t -> slave:int -> Fault.behavior -> unit
val crash_master : t -> int -> unit

(** {2 Chaos hooks}

    Deterministic fault injection used by [Secrep_chaos]: partitions
    cut every link touching an endpoint (including links created
    later, and the total-order mesh for masters), [crash_slave] /
    [recover_slave] model benign fail-stop churn — no accusation is
    recorded, and recovery wipes the host and reinstates it from a
    master checkpoint.  All changes emit [Partition] /
    [Node_crashed] / [Node_recovered] trace events. *)

val set_slave_connectivity : t -> slave_id:int -> up:bool -> unit
(** Healing a partitioned slave emits [Node_recovered] with its
    (stale) store version; keep-alive-driven resync must then converge
    it — the recovery-convergence invariant checks this. *)

val set_master_connectivity : t -> master_id:int -> up:bool -> unit
val set_client_connectivity : t -> client_id:int -> up:bool -> unit
val set_auditor_connectivity : t -> up:bool -> unit

val crash_slave : t -> slave_id:int -> unit
(** Benign fail-stop crash: links down, no corrective action.
    Idempotent. *)

val recover_slave : t -> slave_id:int -> (unit, string) result
(** Undo [crash_slave]: wipe + checkpoint reinstate under a live
    master, links back up.  Fails for excluded slaves (those go
    through {!readmit_slave}) and when no master is alive. *)

val is_crashed : t -> slave_id:int -> bool

val set_loss : t -> float option -> unit
(** Override the loss probability on every mesh link (loss bursts);
    [None] restores the profile's loss.  The total-order channel keeps
    its own loss setting. *)

val set_latency_factor : t -> float -> unit
(** Scale every mesh link's latency model by [factor] relative to the
    net profile (latency spikes); 1.0 restores normal. *)

val latency_factor : t -> float

(** {2 Byzantine delivery faults}

    Beyond fail-stop: message duplication, reorder bursts and payload
    corruption, schedulable from the chaos DSL.  All default off and
    draw no randomness while off, so fault-free runs stay bit-stable. *)

val set_duplicate : t -> float -> unit
(** Probability that any mesh delivery arrives twice (applied to every
    existing and future link).  Raises outside [0, 1). *)

val duplicate : t -> float

val set_reorder : t -> burst:int -> window:float -> unit
(** Hold up to [burst] (>= 2) messages per link and release them in
    reversed arrival order; a held message waits at most [window]
    seconds.  [burst = 0] disables. *)

val reorder : t -> (int * float) option

val set_bitflip : t -> float -> unit
(** Probability that a read reply's pledge has one random bit flipped
    in its wire encoding.  Unparsable frames are dropped (counted as
    [system.bitflips_unparsable]); parsable ones are delivered and
    must fail the client's signature check — asserted at injection,
    since a flip that still verified would be a forgery. *)

val bitflip : t -> float

val exclude_slave : t -> slave_id:int -> discovery:Corrective.discovery -> unit
(** Normally triggered internally by proofs; exposed for tests. *)

val readmit_slave : t -> slave_id:int -> (unit, string) result
(** §3.5: bring a recovered slave back into service — wipe it, ship a
    checkpoint from a live master, re-attach it to that master's slave
    set.  The exclusion remains in the {!Corrective} history.  Fails
    when the slave is not currently excluded or no master is alive. *)

val oracle_version : t -> int

val check_result :
  t -> version:int -> Secrep_store.Query.t -> digest:string -> bool option
(** Ground truth: is [digest] the correct answer for the query at
    [version]?  [None] when tracking is off or the snapshot is
    missing. *)

val reexec_digest : t -> version:int -> Secrep_store.Query.t -> string option
(** Ground truth re-execution: the honest canonical result digest for
    the query at [version].  [None] when tracking is off, the snapshot
    is missing, or the query fails.  The offline audit drivers in
    {!Audit_core} use this as their re-execution oracle. *)

val on_pledge_submitted : t -> (Pledge.t -> unit) -> unit
(** Subscribe to every pledge the moment it is delivered to an auditor
    (after network latency, before sampling/queueing).  Test harness
    hook: the differential audit invariant replays the recorded stream
    through both offline audit drivers. *)
