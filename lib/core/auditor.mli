(** The auditor (§3.4): a trusted server with no slave set whose only
    duty is re-executing the reads behind forwarded pledges.

    It lags the masters on purpose: it applies the write that creates
    version v+1 only after auditing every pledge for version <= v *and*
    more than [max_latency + audit_lag_slack] has passed since the
    masters committed v+1, by which point no client can still accept a
    version-v read (§3.4).

    Its throughput advantages over slaves are modelled exactly as the
    paper lists them: no signing, no client replies, a result cache,
    and work spread into idle periods via its own queue. *)

type t

type audit_verdict = Pledge_ok | Slave_caught | Bad_pledge_signature

val create :
  Secrep_sim.Sim.t ->
  config:Config.t ->
  stats:Secrep_sim.Stats.t ->
  rng:Secrep_crypto.Prng.t ->
  slave_public:(int -> Secrep_crypto.Sig_scheme.public option) ->
  report:(Pledge.t -> unit) ->
  ?trace:Secrep_sim.Trace.t ->
  ?spans:Secrep_sim.Span.t ->
  unit ->
  t
(** [report] fires on every caught slave (delayed discovery); the
    system layer routes it to the responsible master. *)

val submit_pledge : t -> Pledge.t -> unit
(** Client-forwarded pledge.  Subject to [audit_fraction] sampling;
    pledges for versions the auditor has already passed are counted as
    [auditor.late_pledges] and dropped (the lag slack makes this
    impossible for conforming clients).  When the backlog has reached
    [Config.auditor_queue_capacity] the pledge is shed and counted in
    {!overload_drops} instead of growing the queue without bound. *)

val on_committed_write :
  t -> entry:Secrep_store.Oplog.entry -> commit_time:float -> unit
(** Feed from the masters' commit pipeline. *)

val audit_version : t -> int
(** Version the auditor is currently verifying reads for. *)

val backlog : t -> int
(** Pledges queued and not yet verified. *)

val audited : t -> int
val caught : t -> int
val late_pledges : t -> int

val overload_drops : t -> int
(** Pledges shed because the bounded intake queue was full. *)

val cache : t -> Secrep_store.Result_cache.t
val work : t -> Secrep_sim.Work_queue.t

val dedup_hits : t -> int
(** Pledges settled from the dedup index without re-execution; 0 when
    [Config.audit_dedup] is off. *)

val distinct_reexecs : t -> int
(** Distinct (version, query) re-executions recorded by the dedup
    index; 0 when [Config.audit_dedup] is off. *)

val backlog_series : t -> Secrep_sim.Timeseries.t
(** (time, backlog) sampled at every submission and completion — the
    E6 day-curve. *)

val note_suspicion : t -> slave:int -> amount:float -> unit
(** Bump [slave]'s suspicion score (a decayed EWMA of weak misconduct
    signals: double-check mismatches, nonce rejects, late pledges).
    With [Config.audit_adaptive] a score crossing
    [Config.quarantine_threshold] puts the slave on probation (100%
    audit for [quarantine_duration], {e Slave_quarantined} emitted);
    with the flag off the score is tracked but never acted on.
    Suspicion is never grounds for exclusion — only a re-execution
    mismatch is — so honest slaves can be suspected, even quarantined,
    but never falsely accused. *)

val suspicion_score : t -> slave:int -> float
(** Current (decayed) suspicion score; 0 for unknown slaves. *)

val is_quarantined : t -> slave:int -> bool

val quarantines : t -> int
(** Probation periods started (a slave can be quarantined repeatedly). *)
