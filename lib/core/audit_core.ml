(* Offline audit drivers over a recorded pledge stream.

   Both drivers implement the auditor's pure verdict logic — signature
   check, then digest comparison against a re-execution — without the
   work queue, lag cursor or sampling.  [run_naive] is the reference:
   it fully verifies and re-executes every pledge.  [run_dedup] mirrors
   the production fast path: memoized batch-root verification plus the
   dedup index.  Differential testing demands they agree verdict for
   verdict on any input. *)

module Merkle = Secrep_crypto.Merkle
module Sig_scheme = Secrep_crypto.Sig_scheme
module Audit_index = Secrep_store.Audit_index

type verdict = Ok_pledge | Caught | Bad_signature

let equal_verdict (a : verdict) b = a = b

let pp_verdict fmt = function
  | Ok_pledge -> Format.pp_print_string fmt "ok"
  | Caught -> Format.pp_print_string fmt "caught"
  | Bad_signature -> Format.pp_print_string fmt "bad-signature"

let judge ~reexec (pledge : Pledge.t) ~signature_ok =
  if not signature_ok then Bad_signature
  else begin
    match reexec ~version:(Pledge.version pledge) pledge.Pledge.query with
    | None -> Bad_signature (* unanswerable query incriminates nobody *)
    | Some honest_digest ->
      if String.equal honest_digest pledge.Pledge.result_digest then Ok_pledge else Caught
  end

let run_naive ~slave_public ~reexec pledges =
  List.map
    (fun (pledge : Pledge.t) ->
      let signature_ok =
        match slave_public pledge.Pledge.slave_id with
        | Some public -> Pledge.verify_signature ~slave_public:public pledge
        | None -> false
      in
      judge ~reexec pledge ~signature_ok)
    pledges

type dedup_stats = { reexecs : int; dedup_hits : int; root_verifications : int }

let run_dedup ~slave_public ~reexec pledges =
  let idx = Audit_index.create () in
  let verified_roots : (int * string * string, bool) Hashtbl.t = Hashtbl.create 64 in
  let reexecs = ref 0 in
  let root_verifications = ref 0 in
  let verdicts =
    List.map
      (fun (pledge : Pledge.t) ->
        let signature_ok =
          match slave_public pledge.Pledge.slave_id with
          | None -> false
          | Some public -> begin
            match pledge.Pledge.mode with
            | Pledge.Single -> Pledge.verify_signature ~slave_public:public pledge
            | Pledge.Batched { root; proof } ->
              let proof_ok =
                Merkle.verify ~root ~leaf:(Pledge.signed_payload pledge) proof
              in
              let key = (pledge.Pledge.slave_id, root, pledge.Pledge.signature) in
              let root_ok =
                match Hashtbl.find_opt verified_roots key with
                | Some ok -> ok
                | None ->
                  incr root_verifications;
                  let ok =
                    Sig_scheme.verify public
                      ~msg:(Pledge.batch_payload ~slave_id:pledge.Pledge.slave_id ~root)
                      ~signature:pledge.Pledge.signature
                  in
                  Hashtbl.add verified_roots key ok;
                  ok
              in
              proof_ok && root_ok
          end
        in
        if not signature_ok then Bad_signature
        else begin
          let version = Pledge.version pledge in
          let memoized =
            match Audit_index.find idx ~version pledge.Pledge.query with
            | Some digest -> Some digest
            | None ->
              (match reexec ~version pledge.Pledge.query with
              | None -> None
              | Some digest ->
                incr reexecs;
                Audit_index.store idx ~version pledge.Pledge.query ~digest;
                Some digest)
          in
          match memoized with
          | None -> Bad_signature
          | Some honest_digest ->
            if String.equal honest_digest pledge.Pledge.result_digest then Ok_pledge
            else Caught
        end)
      pledges
  in
  ( verdicts,
    {
      reexecs = !reexecs;
      dedup_hits = Audit_index.hits idx;
      root_verifications = !root_verifications;
    } )
