(* Offline audit drivers over a recorded pledge stream.

   Both drivers implement the auditor's pure verdict logic — signature
   check, then digest comparison against a re-execution — without the
   work queue, lag cursor or sampling.  [run_naive] is the reference:
   it fully verifies and re-executes every pledge.  [run_dedup] mirrors
   the production fast path: memoized batch-root verification plus the
   dedup index.  Differential testing demands they agree verdict for
   verdict on any input. *)

module Merkle = Secrep_crypto.Merkle
module Sig_scheme = Secrep_crypto.Sig_scheme
module Audit_index = Secrep_store.Audit_index

type verdict = Ok_pledge | Caught | Bad_signature

let equal_verdict (a : verdict) b = a = b

let pp_verdict fmt = function
  | Ok_pledge -> Format.pp_print_string fmt "ok"
  | Caught -> Format.pp_print_string fmt "caught"
  | Bad_signature -> Format.pp_print_string fmt "bad-signature"

let judge ~reexec (pledge : Pledge.t) ~signature_ok =
  if not signature_ok then Bad_signature
  else begin
    match reexec ~version:(Pledge.version pledge) pledge.Pledge.query with
    | None -> Bad_signature (* unanswerable query incriminates nobody *)
    | Some honest_digest ->
      if String.equal honest_digest pledge.Pledge.result_digest then Ok_pledge else Caught
  end

let run_naive ~slave_public ~reexec pledges =
  List.map
    (fun (pledge : Pledge.t) ->
      let signature_ok =
        match slave_public pledge.Pledge.slave_id with
        | Some public -> Pledge.verify_signature ~slave_public:public pledge
        | None -> false
      in
      judge ~reexec pledge ~signature_ok)
    pledges

type dedup_stats = { reexecs : int; dedup_hits : int; root_verifications : int }

let run_dedup ~slave_public ~reexec pledges =
  let idx = Audit_index.create () in
  let verified_roots : (int * string * string, bool) Hashtbl.t = Hashtbl.create 64 in
  let reexecs = ref 0 in
  let root_verifications = ref 0 in
  let verdicts =
    List.map
      (fun (pledge : Pledge.t) ->
        let signature_ok =
          match slave_public pledge.Pledge.slave_id with
          | None -> false
          | Some public -> begin
            match pledge.Pledge.mode with
            | Pledge.Single -> Pledge.verify_signature ~slave_public:public pledge
            | Pledge.Batched { root; proof } ->
              let proof_ok =
                Merkle.verify ~root ~leaf:(Pledge.signed_payload pledge) proof
              in
              let key = (pledge.Pledge.slave_id, root, pledge.Pledge.signature) in
              let root_ok =
                match Hashtbl.find_opt verified_roots key with
                | Some ok -> ok
                | None ->
                  incr root_verifications;
                  let ok =
                    Sig_scheme.verify public
                      ~msg:(Pledge.batch_payload ~slave_id:pledge.Pledge.slave_id ~root)
                      ~signature:pledge.Pledge.signature
                  in
                  Hashtbl.add verified_roots key ok;
                  ok
              in
              proof_ok && root_ok
          end
        in
        if not signature_ok then Bad_signature
        else begin
          let version = Pledge.version pledge in
          let memoized =
            match Audit_index.find idx ~version pledge.Pledge.query with
            | Some digest -> Some digest
            | None ->
              (match reexec ~version pledge.Pledge.query with
              | None -> None
              | Some digest ->
                incr reexecs;
                Audit_index.store idx ~version pledge.Pledge.query ~digest;
                Some digest)
          in
          match memoized with
          | None -> Bad_signature
          | Some honest_digest ->
            if String.equal honest_digest pledge.Pledge.result_digest then Ok_pledge
            else Caught
        end)
      pledges
  in
  ( verdicts,
    {
      reexecs = !reexecs;
      dedup_hits = Audit_index.hits idx;
      root_verifications = !root_verifications;
    } )

type sampled = {
  audited : int;
  caught : int;
  first_caught : int option;
  caught_by_slave : (int * int) list;
}

let run_sampled ~draws ~fraction ~adaptive ?(floor = 0.25) ~slave_public ~reexec
    pledges =
  if List.length pledges > Array.length draws then
    invalid_arg "Audit_core.run_sampled: fewer draws than pledges";
  (* Offline suspicion: bumped by the conviction amount on every Caught
     verdict, never decayed.  Decay is a liveness refinement; the
     no-worse comparison only needs the ordering of scores, which decay
     preserves between catches. *)
  let susp : (int, float) Hashtbl.t = Hashtbl.create 8 in
  let probability slave =
    let s =
      match Hashtbl.find_opt susp slave with
      | Some s -> s
      | None ->
        Hashtbl.replace susp slave 0.0;
        0.0
    in
    if not adaptive then fraction
    else begin
      let sum = Hashtbl.fold (fun _ v acc -> acc +. v) susp 0.0 in
      let mean = sum /. float_of_int (Hashtbl.length susp) in
      Float.min 1.0
        (Float.max (floor *. fraction) (fraction *. (1.0 +. s) /. (1.0 +. mean)))
    end
  in
  let audited = ref 0 in
  let caught = ref 0 in
  let first_caught = ref None in
  let caught_by_slave : (int, int) Hashtbl.t = Hashtbl.create 8 in
  List.iteri
    (fun i (pledge : Pledge.t) ->
      let slave = pledge.Pledge.slave_id in
      let p = probability slave in
      if draws.(i) < p then begin
        incr audited;
        let signature_ok =
          match slave_public slave with
          | Some public -> Pledge.verify_signature ~slave_public:public pledge
          | None -> false
        in
        match judge ~reexec pledge ~signature_ok with
        | Caught ->
          incr caught;
          if !first_caught = None then first_caught := Some i;
          Hashtbl.replace caught_by_slave slave
            (1 + Option.value ~default:0 (Hashtbl.find_opt caught_by_slave slave));
          let s = Option.value ~default:0.0 (Hashtbl.find_opt susp slave) in
          Hashtbl.replace susp slave (s +. 2.0)
        | Ok_pledge | Bad_signature -> ()
      end)
    pledges;
  {
    audited = !audited;
    caught = !caught;
    first_caught = !first_caught;
    caught_by_slave =
      List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) caught_by_slave []);
  }
