(** Malicious-slave behaviour injection.

    The paper's threat model (§2, §3.3) is a slave that returns wrong
    answers while remaining protocol-conformant enough to be believed;
    these modes cover the attacks the protocol must catch, plus
    cruder ones the client rejects immediately.  The strategic modes
    ([Replay_pledge], [Equivocate], [Adaptive], [Flaky_omit]) are
    stateful: the slave threads a {!state} record through
    {!decide} so attacks can correlate across reads and react to
    audit pressure. *)

type lie_mode =
  | Corrupt_result
      (** Execute honestly, then flip the answer before pledging — the
          canonical "wrong answer, valid pledge" attack detected only
          by double-check or audit. *)
  | Collude of string
      (** Like [Corrupt_result], but the fabricated answer is a
          deterministic function of the shared tag and the query, so
          every colluding slave returns the *same* wrong answer —
          the attack §4's quorum-read variant must pay extra to
          resist. *)
  | Stale_state
      (** Answer from a frozen, outdated copy of the content while
          attaching the latest keep-alive — e.g. silently dropping
          updates.  Detected like a corrupt result. *)
  | Bad_signature
      (** Pledge signature is garbage; clients reject on the spot. *)
  | Omit_result
      (** Drop the request on the floor (availability attack); clients
          time out and retry elsewhere. *)
  | Replay_pledge
      (** Resend a previously signed, still-fresh pledge (and its
          result) for a *different* read — undetectable without a
          per-read nonce binding the pledge to the request. *)
  | Equivocate of { clique : int list }
      (** Serve the configured clique of client ids honestly and lie
          to everyone else, so the clique's double-checks and quorum
          reads never disagree. *)
  | Adaptive of { threshold : float }
      (** Lie only while the slave's own estimate of audit pressure
          (a decayed EWMA bumped by visible exclusions and repeated
          queries) stays below [threshold]; go quiet for a cooldown
          after a near-miss. *)
  | Flaky_omit of { burst : int }
      (** Correlated omission: once an omission starts, drop [burst]
          consecutive reads before re-rolling — models a host that
          "goes dark" in bursts rather than i.i.d. drops. *)

type behavior =
  | Honest
  | Malicious of { probability : float; mode : lie_mode; from_time : float }
      (** Lie on each read with [probability], starting at simulated
          time [from_time]. *)

type state
(** Per-slave attack state for the strategic modes: audit-pressure
    EWMA, post-near-miss quiet window, remaining omission burst. *)

val initial_state : ?pressure_tau:float -> unit -> state
(** Fresh state; [pressure_tau] (default 30 s) is the e-folding time
    of the audit-pressure estimate. *)

val pressure : state -> now:float -> float
(** Current decayed audit-pressure estimate. *)

val bump_pressure : state -> now:float -> amount:float -> unit
(** Record an audit-pressure signal (e.g. a peer slave was excluded,
    or the same client re-asked a recently answered query). *)

val note_near_miss : state -> now:float -> cooldown:float -> unit
(** An [Adaptive] attacker saw evidence it was nearly caught; stay
    honest until [now + cooldown]. *)

type decision =
  | Act of lie_mode  (** Lie on this read using [lie_mode]. *)
  | Suppress of string
      (** A strategic mode chose *not* to attack (reason given) —
          e.g. the client is in the clique, or audit pressure is too
          high.  Distinct from [Pass] so traces can show restraint. *)
  | Pass  (** Behave honestly; nothing noteworthy. *)

val decide :
  behavior -> now:float -> client:int -> state -> Secrep_crypto.Prng.t -> decision
(** Stateful attack decision for one read from [client].  For the
    legacy memoryless modes this performs exactly the same single
    Bernoulli draw as {!lies}. *)

val lies : behavior -> now:float -> Secrep_crypto.Prng.t -> lie_mode option
(** Roll the dice: [Some mode] when this read should be answered
    dishonestly.  Memoryless legacy entry point; {!decide} supersedes
    it for the strategic modes. *)

val mode_name : lie_mode -> string

val describe : behavior -> string
