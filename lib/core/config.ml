type t = {
  max_latency : float;
  keepalive_period : float;
  double_check_probability : float;
  audit_enabled : bool;
  audit_fraction : float;
  audit_lag_slack : float;
  audit_cache_capacity : int;
  scheme : Secrep_crypto.Sig_scheme.scheme;
  per_doc_cost : float;
  signature_cost : float;
  verify_cost : float;
  write_cost : float;
  greedy_window : float;
  greedy_factor : float;
  greedy_min_samples : int;
  read_retry_limit : int;
  read_timeout_factor : float;
  retry_backoff_base : float;
  retry_backoff_factor : float;
  retry_backoff_cap : float;
  retry_jitter : float;
  breaker_threshold : int;
  breaker_cooldown : float;
  degraded_reads : bool;
  auditor_queue_capacity : int;
  pledge_batch_size : int;
  pledge_batch_window : float;
  audit_dedup : bool;
  read_nonces : bool;
  audit_adaptive : bool;
  suspicion_tau : float;
  suspicion_floor : float;
  quarantine_threshold : float;
  quarantine_duration : float;
  parallel_domains : int;
}

let default =
  {
    max_latency = 5.0;
    keepalive_period = 1.0;
    double_check_probability = 0.05;
    audit_enabled = true;
    audit_fraction = 1.0;
    audit_lag_slack = 1.0;
    audit_cache_capacity = 4096;
    scheme = Secrep_crypto.Sig_scheme.Hmac_sim;
    (* Cost constants are loosely calibrated to 2003-era hardware the
       paper assumes: ~50 us/doc scanned, ~5 ms RSA sign, ~0.2 ms
       verify.  The micro-benchmarks measure our real implementations
       for comparison. *)
    per_doc_cost = 50e-6;
    signature_cost = 5e-3;
    verify_cost = 0.2e-3;
    write_cost = 1e-3;
    greedy_window = 60.0;
    greedy_factor = 4.0;
    greedy_min_samples = 10;
    read_retry_limit = 5;
    read_timeout_factor = 2.0;
    retry_backoff_base = 0.05;
    retry_backoff_factor = 2.0;
    retry_backoff_cap = 2.0;
    retry_jitter = 0.5;
    breaker_threshold = 3;
    breaker_cooldown = 10.0;
    degraded_reads = true;
    auditor_queue_capacity = 100_000;
    (* Batch size 1 and dedup off reproduce the unbatched protocol
       bit-for-bit; E11 turns both on to measure the saving. *)
    pledge_batch_size = 1;
    pledge_batch_window = 0.05;
    audit_dedup = false;
    (* Replay-nonces and suspicion-weighted auditing both default off:
       pledges keep their legacy payload/encoding and the auditor keeps
       uniform sampling, reproducing the seed protocol bit-for-bit.
       E13 turns them on to measure the hardening. *)
    read_nonces = false;
    audit_adaptive = false;
    suspicion_tau = 30.0;
    suspicion_floor = 0.25;
    quarantine_threshold = 3.0;
    quarantine_duration = 30.0;
    (* 0 = the sequential lockstep scheduler, bit-identical to the
       seed.  K > 1 runs a sharded deployment's shards on up to K
       domains; single-system runs ignore it. *)
    parallel_domains = 0;
  }

let validate t =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if t.max_latency <= 0.0 then err "max_latency must be positive"
  else if t.keepalive_period <= 0.0 then err "keepalive_period must be positive"
  else if t.keepalive_period >= t.max_latency then
    err "keepalive_period (%g) must be below max_latency (%g) or honest slaves starve"
      t.keepalive_period t.max_latency
  else if t.double_check_probability < 0.0 || t.double_check_probability > 1.0 then
    err "double_check_probability must be in [0,1]"
  else if t.audit_fraction < 0.0 || t.audit_fraction > 1.0 then
    err "audit_fraction must be in [0,1]"
  else if t.audit_lag_slack < 0.0 then err "audit_lag_slack must be non-negative"
  else if t.audit_cache_capacity < 1 then err "audit_cache_capacity must be at least 1"
  else if t.per_doc_cost < 0.0 || t.signature_cost < 0.0 || t.verify_cost < 0.0
          || t.write_cost < 0.0
  then err "cost constants must be non-negative"
  else if t.greedy_window <= 0.0 then err "greedy_window must be positive"
  else if t.greedy_factor < 1.0 then err "greedy_factor must be at least 1"
  else if t.greedy_min_samples < 1 then err "greedy_min_samples must be at least 1"
  else if t.read_retry_limit < 0 then err "read_retry_limit must be non-negative"
  else if t.read_timeout_factor < 1.0 then
    err "read_timeout_factor must be at least 1 (a round trip takes up to 2 one-way delays)"
  else if t.retry_backoff_base < 0.0 then err "retry_backoff_base must be non-negative"
  else if t.retry_backoff_factor < 1.0 then err "retry_backoff_factor must be at least 1"
  else if t.retry_backoff_cap < t.retry_backoff_base then
    err "retry_backoff_cap must be at least retry_backoff_base"
  else if t.retry_jitter < 0.0 || t.retry_jitter > 1.0 then
    err "retry_jitter must be in [0,1]"
  else if t.breaker_threshold < 1 then err "breaker_threshold must be at least 1"
  else if t.breaker_cooldown < 0.0 then err "breaker_cooldown must be non-negative"
  else if t.auditor_queue_capacity < 1 then err "auditor_queue_capacity must be at least 1"
  else if t.pledge_batch_size < 1 then err "pledge_batch_size must be at least 1"
  else if t.pledge_batch_window <= 0.0 then err "pledge_batch_window must be positive"
  else if t.pledge_batch_window >= t.max_latency then
    err "pledge_batch_window (%g) must be below max_latency (%g) or batched pledges go stale"
      t.pledge_batch_window t.max_latency
  else if t.suspicion_tau <= 0.0 then err "suspicion_tau must be positive"
  else if t.suspicion_floor < 0.0 || t.suspicion_floor > 1.0 then
    err "suspicion_floor must be in [0,1]"
  else if t.quarantine_threshold <= 0.0 then err "quarantine_threshold must be positive"
  else if t.quarantine_duration < 0.0 then err "quarantine_duration must be non-negative"
  else if t.parallel_domains < 0 then err "parallel_domains must be non-negative"
  else Ok ()

let validate_exn t =
  match validate t with Ok () -> t | Error msg -> invalid_arg ("Config: " ^ msg)
