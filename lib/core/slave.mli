(** Slave servers (§2): marginally-trusted replicas that execute read
    queries and sign a pledge for every answer.  State arrives lazily
    from the owning master after commit (§3); a correct slave refuses
    reads while its keep-alive is older than [max_latency].

    Malicious behaviour is injected via {!Fault.behavior}: a lying
    slave still produces protocol-valid pledges (that is the attack),
    it just pledges a wrong digest. *)

type t

type read_reply = {
  result : Secrep_store.Query_result.t;
  pledge : Pledge.t;
}

val create :
  Secrep_sim.Sim.t ->
  rng:Secrep_crypto.Prng.t ->
  id:int ->
  config:Config.t ->
  master_id:int ->
  stats:Secrep_sim.Stats.t ->
  ?trace:Secrep_sim.Trace.t ->
  ?spans:Secrep_sim.Span.t ->
  unit ->
  t

val id : t -> int
val public : t -> Secrep_crypto.Sig_scheme.public
val master_id : t -> int
val set_master : t -> master_id:int -> unit
(** Re-homing after a master crash (§3: remaining masters divide the
    slave set). *)

val set_behavior : t -> Fault.behavior -> unit
val behavior : t -> Fault.behavior

val note_peer_excluded : t -> unit
(** A corrective action against some slave became public.  Honest
    slaves ignore it; an [Adaptive] attacker counts it as audit
    pressure and lies less while the heat is on. *)

val receive_update :
  t -> entries:Secrep_store.Oplog.entry list -> keepalive:Keepalive.t -> unit
(** Applies the contiguous suffix of [entries]; on a version gap the
    resync callback fires with the slave's current version.  A
    stale-state attacker absorbs the keep-alive but drops entries. *)

val on_resync_needed : t -> (slave_id:int -> from_version:int -> unit) -> unit
(** Installed by the owning master; called when updates arrive with a
    gap. *)

val handle_read :
  t ->
  client:int ->
  request:int ->
  query:Secrep_store.Query.t ->
  reply:(read_reply option -> unit) ->
  unit
(** Executes on the slave's simulated CPU (scan cost + signing cost)
    and replies through [reply].  [None] = refused (stale keep-alive
    or excluded).  An [Omit_result] attacker never calls [reply].
    [request] is the read's lineage id, stamped on the pledge events
    it generates. *)

val version : t -> int
val latest_keepalive : t -> Keepalive.t option
val is_available : t -> now:float -> bool
(** Fresh keep-alive in hand and not excluded. *)

val exclude : t -> unit
val is_excluded : t -> bool

val reinstate : t -> checkpoint:string -> keepalive:Keepalive.t -> (unit, string) result
(** §3.5 recovery: wipe the (possibly corrupted) local state, install
    the master-provided checkpoint (a {!Secrep_store.Store.to_bytes}
    image), reset behaviour to honest and resume serving. *)

val reads_served : t -> int
val lies_told : t -> int
val work : t -> Secrep_sim.Work_queue.t
