type lie_mode =
  | Corrupt_result
  | Collude of string
  | Stale_state
  | Bad_signature
  | Omit_result
  | Replay_pledge
  | Equivocate of { clique : int list }
  | Adaptive of { threshold : float }
  | Flaky_omit of { burst : int }

type behavior =
  | Honest
  | Malicious of { probability : float; mode : lie_mode; from_time : float }

type state = {
  pressure_tau : float;
  mutable pressure : float;
  mutable pressure_at : float;
  mutable quiet_until : float;
  mutable burst_left : int;
}

let initial_state ?(pressure_tau = 30.0) () =
  { pressure_tau; pressure = 0.0; pressure_at = 0.0; quiet_until = neg_infinity; burst_left = 0 }

let pressure state ~now =
  if state.pressure_tau <= 0.0 then state.pressure
  else state.pressure *. exp (-.Float.max 0.0 (now -. state.pressure_at) /. state.pressure_tau)

let bump_pressure state ~now ~amount =
  state.pressure <- pressure state ~now +. amount;
  state.pressure_at <- now

let note_near_miss state ~now ~cooldown =
  state.quiet_until <- Float.max state.quiet_until (now +. cooldown)

type decision = Act of lie_mode | Suppress of string | Pass

let decide behavior ~now ~client state g =
  match behavior with
  | Honest -> Pass
  | Malicious { probability; mode; from_time } ->
    if now < from_time then Pass
    else begin
      match mode with
      | Corrupt_result | Collude _ | Stale_state | Bad_signature | Omit_result
      | Replay_pledge ->
        if Secrep_crypto.Prng.bernoulli g probability then Act mode else Pass
      | Equivocate { clique } ->
        if List.mem client clique then Suppress "clique-member"
        else if Secrep_crypto.Prng.bernoulli g probability then Act mode
        else Pass
      | Adaptive { threshold } ->
        if now < state.quiet_until then Suppress "quiet-after-near-miss"
        else if pressure state ~now >= threshold then Suppress "audit-pressure"
        else if Secrep_crypto.Prng.bernoulli g probability then Act mode
        else Pass
      | Flaky_omit { burst } ->
        if state.burst_left > 0 then begin
          state.burst_left <- state.burst_left - 1;
          Act mode
        end
        else if Secrep_crypto.Prng.bernoulli g probability then begin
          state.burst_left <- max 0 (burst - 1);
          Act mode
        end
        else Pass
    end

let lies behavior ~now g =
  match behavior with
  | Honest -> None
  | Malicious { probability; mode; from_time } ->
    if now >= from_time && Secrep_crypto.Prng.bernoulli g probability then Some mode else None

let mode_name = function
  | Corrupt_result -> "corrupt-result"
  | Collude tag -> "collude:" ^ tag
  | Stale_state -> "stale-state"
  | Bad_signature -> "bad-signature"
  | Omit_result -> "omit-result"
  | Replay_pledge -> "replay-pledge"
  | Equivocate { clique } ->
    "equivocate:" ^ String.concat "," (List.map string_of_int clique)
  | Adaptive { threshold } -> Printf.sprintf "adaptive:%.3g" threshold
  | Flaky_omit { burst } -> Printf.sprintf "flaky-omit:%d" burst

let describe = function
  | Honest -> "honest"
  | Malicious { probability; mode; from_time } ->
    Printf.sprintf "malicious(%s, p=%.3g, from t=%.3g)" (mode_name mode) probability from_time
