module Sig_scheme = Secrep_crypto.Sig_scheme
module Merkle = Secrep_crypto.Merkle
module Hex = Secrep_crypto.Hex
module Query = Secrep_store.Query
module Canonical = Secrep_store.Canonical

type sig_mode = Single | Batched of { root : string; proof : Merkle.proof }

type t = {
  slave_id : int;
  query : Query.t;
  result_digest : string;
  keepalive : Keepalive.t;
  nonce : int;
  signature : string;
  mode : sig_mode;
}

(* Nonce 0 means "no nonce" and keeps the legacy payload bytes, so
   signatures made before the replay hardening (and every run with
   [Config.read_nonces] off) verify unchanged.  A real nonce gets its
   own domain-separated prefix: a replayed pledge then signs a stale
   nonce and can never collide with the payload the client expects. *)
let payload ?(nonce = 0) ~slave_id ~query ~result_digest ~keepalive () =
  let ka =
    Keepalive.signed_payload keepalive ^ "~" ^ Hex.encode keepalive.Keepalive.signature
  in
  if nonce = 0 then
    Printf.sprintf "pledge|%d|%s|%s|%s" slave_id
      (Hex.encode (Canonical.of_query query))
      (Hex.encode result_digest) ka
  else
    Printf.sprintf "pledge-n|%d|%d|%s|%s|%s" slave_id nonce
      (Hex.encode (Canonical.of_query query))
      (Hex.encode result_digest) ka

(* Domain-separated so a signed batch root can never be confused with a
   directly-signed single pledge (and vice versa). *)
let batch_payload ~slave_id ~root =
  Printf.sprintf "pledge-batch|%d|%s" slave_id (Hex.encode root)

let make ?(nonce = 0) ~slave_key ~slave_id ~query ~result_digest ~keepalive () =
  let signature =
    Sig_scheme.sign slave_key (payload ~nonce ~slave_id ~query ~result_digest ~keepalive ())
  in
  { slave_id; query; result_digest; keepalive; nonce; signature; mode = Single }

let signed_payload t =
  payload ~nonce:t.nonce ~slave_id:t.slave_id ~query:t.query ~result_digest:t.result_digest
    ~keepalive:t.keepalive ()

let sign_batch ~slave_key ~slave_id ~root =
  Sig_scheme.sign slave_key (batch_payload ~slave_id ~root)

let verify_signature ~slave_public t =
  match t.mode with
  | Single ->
    Sig_scheme.verify slave_public ~msg:(signed_payload t) ~signature:t.signature
  | Batched { root; proof } ->
    (* The signature covers the batch root; the proof ties this pledge's
       payload (a Merkle leaf) to that root. *)
    Merkle.verify ~root ~leaf:(signed_payload t) proof
    && Sig_scheme.verify slave_public
         ~msg:(batch_payload ~slave_id:t.slave_id ~root)
         ~signature:t.signature

let version t = t.keepalive.Keepalive.version

let verify ?expected_nonce ~slave_public ~master_public ~result ~now ~max_latency t =
  if (match expected_nonce with Some n -> t.nonce <> n | None -> false) then
    Error
      (Printf.sprintf "nonce mismatch: pledge bound to %d, this read is %d" t.nonce
         (Option.get expected_nonce))
  else if not (String.equal (Canonical.result_digest result) t.result_digest) then
    Error "result does not hash to the pledged digest"
  else if not (verify_signature ~slave_public t) then Error "bad slave signature"
  else if not (Keepalive.verify ~master_public t.keepalive) then
    Error "keep-alive not signed by the master"
  else if not (Keepalive.is_fresh t.keepalive ~now ~max_latency) then
    Error
      (Printf.sprintf "stale: keep-alive is %.3fs old (max_latency %.3fs)"
         (Keepalive.age t.keepalive ~now) max_latency)
  else Ok ()
