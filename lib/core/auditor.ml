module Sim = Secrep_sim.Sim
module Work_queue = Secrep_sim.Work_queue
module Stats = Secrep_sim.Stats
module Trace = Secrep_sim.Trace
module Event = Secrep_sim.Event
module Span = Secrep_sim.Span
module Timeseries = Secrep_sim.Timeseries
module Prng = Secrep_crypto.Prng
module Store = Secrep_store.Store
module Oplog = Secrep_store.Oplog
module Query = Secrep_store.Query
module Query_eval = Secrep_store.Query_eval
module Canonical = Secrep_store.Canonical
module Result_cache = Secrep_store.Result_cache
module Audit_index = Secrep_store.Audit_index
module Merkle = Secrep_crypto.Merkle
module Sig_scheme = Secrep_crypto.Sig_scheme

type audit_verdict = Pledge_ok | Slave_caught | Bad_pledge_signature

(* Per-slave suspicion: an exponentially-decayed accumulator of weak
   signals (late pledges, nonce rejects, double-check mismatches,
   convictions).  [score] is the value as of [score_at]; readers decay
   it lazily.  None of this is proof — it only biases where the audit
   budget goes, and (past the threshold) triggers probation. *)
type suspicion = {
  mutable score : float;
  mutable score_at : float;
  mutable quarantined_until : float;
  mutable quarantine_count : int;
}

type t = {
  sim : Sim.t;
  config : Config.t;
  stats : Stats.t;
  rng : Prng.t;
  trace : Trace.t option;
  spans : Span.t option;
  store : Store.t; (* lags the masters *)
  cache : Result_cache.t;
  dedup : Audit_index.t option; (* Some iff config.audit_dedup *)
  (* (slave, root, signature) -> did the root signature verify?  Each
     distinct batch root costs one full verification; every further
     pledge under it is a hash-only proof check. *)
  verified_roots : (int * string * string, bool) Hashtbl.t;
  work : Work_queue.t;
  slave_public : int -> Secrep_crypto.Sig_scheme.public option;
  report : Pledge.t -> unit;
  pending : (int, Pledge.t Queue.t) Hashtbl.t; (* version -> queue *)
  mutable committed : (Oplog.entry * float) list; (* future writes, oldest first *)
  mutable pumping : bool; (* one audit in flight on the work queue *)
  mutable audited : int;
  mutable caught : int;
  mutable late : int;
  mutable overload_drops : int;
  backlog_series : Timeseries.t;
  mutable backlog : int;
  suspicion : (int, suspicion) Hashtbl.t; (* slave id -> record *)
  mutable quarantines : int;
}

let emit t event =
  match t.trace with
  | Some tr -> Trace.emit tr ~time:(Sim.now t.sim) ~source:"auditor" event
  | None -> ()

let span t ~start ~duration name =
  match t.spans with
  | Some spans -> Span.record spans ~source:"auditor" ~start ~duration name
  | None -> ()

let create sim ~config ~stats ~rng ~slave_public ~report ?trace:trace_buf ?spans ()
    =
  let t =
    {
      sim;
      config;
      stats;
      rng;
      trace = trace_buf;
      spans;
      store = Store.create ();
      cache = Result_cache.create ~capacity:config.Config.audit_cache_capacity ();
      dedup = (if config.Config.audit_dedup then Some (Audit_index.create ()) else None);
      verified_roots = Hashtbl.create 64;
      work = Work_queue.create sim ();
      slave_public;
      report;
      pending = Hashtbl.create 16;
      committed = [];
      pumping = false;
      audited = 0;
      caught = 0;
      late = 0;
      overload_drops = 0;
      backlog_series = Timeseries.create ~name:"auditor.backlog" ();
      backlog = 0;
      suspicion = Hashtbl.create 16;
      quarantines = 0;
    }
  in
  t

let audit_version t = Store.version t.store
let backlog t = t.backlog
let audited t = t.audited
let caught t = t.caught
let late_pledges t = t.late
let overload_drops t = t.overload_drops
let cache t = t.cache
let work t = t.work
let backlog_series t = t.backlog_series
let dedup_hits t = match t.dedup with Some d -> Audit_index.hits d | None -> 0
let distinct_reexecs t = match t.dedup with Some d -> Audit_index.distinct d | None -> 0

let note_backlog t =
  Timeseries.record t.backlog_series ~time:(Sim.now t.sim) (float_of_int t.backlog)

(* -- suspicion scores (adaptive auditing) ---------------------------- *)

let suspicion_for t ~slave =
  match Hashtbl.find_opt t.suspicion slave with
  | Some s -> s
  | None ->
    let s =
      { score = 0.0; score_at = Sim.now t.sim; quarantined_until = 0.0;
        quarantine_count = 0 }
    in
    Hashtbl.add t.suspicion slave s;
    s

let decayed_score t (s : suspicion) =
  let now = Sim.now t.sim in
  if s.score = 0.0 then 0.0
  else s.score *. exp (-.(now -. s.score_at) /. t.config.Config.suspicion_tau)

let suspicion_score t ~slave =
  match Hashtbl.find_opt t.suspicion slave with
  | Some s -> decayed_score t s
  | None -> 0.0

let is_quarantined t ~slave =
  match Hashtbl.find_opt t.suspicion slave with
  | Some s -> Sim.now t.sim < s.quarantined_until
  | None -> false

let quarantines t = t.quarantines

let note_suspicion t ~slave ~amount =
  let s = suspicion_for t ~slave in
  let now = Sim.now t.sim in
  s.score <- decayed_score t s +. amount;
  s.score_at <- now;
  Stats.incr t.stats "auditor.suspicion_bumps";
  (* Probation only exists in the adaptive regime: with the flag off
     the score is tracked (cheap, invisible) but never acted on, so the
     seed event stream is untouched. *)
  if
    t.config.Config.audit_adaptive
    && s.score >= t.config.Config.quarantine_threshold
    && now >= s.quarantined_until
  then begin
    s.quarantined_until <- now +. t.config.Config.quarantine_duration;
    s.quarantine_count <- s.quarantine_count + 1;
    t.quarantines <- t.quarantines + 1;
    Stats.incr t.stats "auditor.quarantines";
    emit t
      (Event.Slave_quarantined
         { slave; score = s.score; until = s.quarantined_until })
  end

(* Suspicion-weighted sampling probability for one pledge, normalized
   against the mean score over all tracked slaves so the expected audit
   volume stays near the uniform budget ([audit_fraction]).  Quarantined
   slaves are audited at 100% (probation); everyone else is clamped to
   no less than [suspicion_floor *. audit_fraction] so an attacker that
   keeps its own score clean is still sampled. *)
let adaptive_probability t ~slave =
  if is_quarantined t ~slave then 1.0
  else begin
    let base = t.config.Config.audit_fraction in
    let total, n =
      Hashtbl.fold (fun _ s (tot, n) -> (tot +. decayed_score t s, n + 1))
        t.suspicion (0.0, 0)
    in
    let mean = if n = 0 then 0.0 else total /. float_of_int n in
    let mine = suspicion_score t ~slave in
    let p = base *. (1.0 +. mine) /. (1.0 +. mean) in
    Float.min 1.0 (Float.max (t.config.Config.suspicion_floor *. base) p)
  end

let queue_for t version =
  match Hashtbl.find_opt t.pending version with
  | Some q -> q
  | None ->
    let q = Queue.create () in
    Hashtbl.add t.pending version q;
    q

(* May the auditor advance past its current version?  Only when the
   next committed write is old enough that no conforming client can
   still accept (and thus still forward) a read for the current
   version. *)
let rec pump t =
  if not t.pumping then begin
    let current = audit_version t in
    let q = queue_for t current in
    if not (Queue.is_empty q) then begin
      let pledge = Queue.pop q in
      t.pumping <- true;
      audit_one t pledge
    end
    else begin
      match t.committed with
      | (entry, commit_time) :: rest
        when entry.Oplog.version = current + 1
             && Sim.now t.sim
                >= commit_time +. t.config.Config.max_latency
                   +. t.config.Config.audit_lag_slack ->
        Store.apply_entry t.store entry;
        t.committed <- rest;
        Hashtbl.remove t.pending current;
        (match t.dedup with
        | Some idx -> Audit_index.drop_version idx ~version:current
        | None -> ());
        emit t (Event.Audit_advance { version = current + 1 });
        pump t
      | (entry, commit_time) :: _ when entry.Oplog.version = current + 1 ->
        (* Come back once the lag slack has elapsed. *)
        let wake =
          commit_time +. t.config.Config.max_latency +. t.config.Config.audit_lag_slack
        in
        ignore
          (Sim.schedule t.sim ~delay:(Float.max 0.0 (wake -. Sim.now t.sim) +. 1e-9)
             (fun () -> pump t))
      | _ -> () (* nothing to do; new pledges or commits will re-pump *)
    end
  end

and audit_one t pledge =
  let submitted = Sim.now t.sim in
  let finish verdict cost =
    Work_queue.submit t.work ~cost (fun () ->
        t.audited <- t.audited + 1;
        t.backlog <- t.backlog - 1;
        Stats.incr t.stats "auditor.audited";
        note_backlog t;
        (* Queueing plus re-execution: the span covers the pledge's
           whole stay on the audit work queue. *)
        span t ~start:submitted ~duration:(Sim.now t.sim -. submitted) "audit";
        (match verdict with
        | Slave_caught ->
          t.caught <- t.caught + 1;
          Stats.incr t.stats "auditor.caught";
          note_suspicion t ~slave:pledge.Pledge.slave_id ~amount:2.0;
          emit t
            (Event.Audit_conviction
               { slave = pledge.Pledge.slave_id; version = Pledge.version pledge });
          t.report pledge
        | Bad_pledge_signature -> Stats.incr t.stats "auditor.bad_signatures"
        | Pledge_ok -> ());
        t.pumping <- false;
        pump t)
  in
  (* Signature check first: an unsigned "pledge" incriminates nobody.
     A [Single] pledge costs one full verification.  A [Batched] pledge
     costs a full verification only for the first pledge carrying its
     root; every later one is a hash-only inclusion-proof check against
     the memoized outcome. *)
  let signature_ok, sig_cost =
    match t.slave_public pledge.Pledge.slave_id with
    | None -> (false, t.config.Config.verify_cost)
    | Some public -> begin
      match pledge.Pledge.mode with
      | Pledge.Single ->
        (Pledge.verify_signature ~slave_public:public pledge, t.config.Config.verify_cost)
      | Pledge.Batched { root; proof } ->
        let proof_ok = Merkle.verify ~root ~leaf:(Pledge.signed_payload pledge) proof in
        let key = (pledge.Pledge.slave_id, root, pledge.Pledge.signature) in
        let root_ok, cost =
          match Hashtbl.find_opt t.verified_roots key with
          | Some ok ->
            Stats.incr t.stats "auditor.root_sig_hits";
            (ok, 1e-6)
          | None ->
            let ok =
              Sig_scheme.verify public
                ~msg:(Pledge.batch_payload ~slave_id:pledge.Pledge.slave_id ~root)
                ~signature:pledge.Pledge.signature
            in
            Hashtbl.add t.verified_roots key ok;
            Stats.incr t.stats "auditor.root_verifications";
            (ok, t.config.Config.verify_cost)
        in
        (proof_ok && root_ok, cost)
    end
  in
  if not signature_ok then finish Bad_pledge_signature sig_cost
  else begin
    let query = pledge.Pledge.query in
    let version = audit_version t in
    let settle ~digest ~reexec_cost =
      let verdict =
        if String.equal digest pledge.Pledge.result_digest then Pledge_ok else Slave_caught
      in
      finish verdict (sig_cost +. reexec_cost)
    in
    match t.dedup with
    | Some idx -> begin
      (* Dedup: each distinct (version, query) re-executes once; every
         repeat settles against the memoized digest. *)
      match Audit_index.find idx ~version query with
      | Some digest ->
        Stats.incr t.stats "auditor.dedup_hits";
        emit t
          (Event.Audit_dedup_hit { slave = pledge.Pledge.slave_id; version });
        settle ~digest ~reexec_cost:1e-6
      | None -> begin
        match Query_eval.execute t.store query with
        | Error _ -> finish Bad_pledge_signature sig_cost
        | Ok { result; scanned } ->
          let digest = Canonical.result_digest result in
          Audit_index.store idx ~version query ~digest;
          Result_cache.store t.cache ~version query ~digest;
          Stats.incr t.stats "auditor.reexecutions";
          Stats.incr t.stats "auditor.distinct_reexecs";
          settle ~digest
            ~reexec_cost:
              (Query_eval.cost_seconds ~scanned ~cost_class:(Query.cost_class query)
                 ~per_doc:t.config.Config.per_doc_cost)
      end
    end
    | None -> begin
      match Result_cache.find t.cache ~version query with
      | Some digest ->
        (* Cache hit: just compare digests — the "query optimization
           mechanisms (cache results in the simplest case)" of §3.4. *)
        Stats.incr t.stats "auditor.cache_hits";
        settle ~digest ~reexec_cost:1e-6
      | None -> begin
        match Query_eval.execute t.store query with
        | Error _ -> finish Bad_pledge_signature sig_cost
        | Ok { result; scanned } ->
          let digest = Canonical.result_digest result in
          Result_cache.store t.cache ~version query ~digest;
          Stats.incr t.stats "auditor.reexecutions";
          settle ~digest
            ~reexec_cost:
              (Query_eval.cost_seconds ~scanned ~cost_class:(Query.cost_class query)
                 ~per_doc:t.config.Config.per_doc_cost)
      end
    end
  end

let submit_pledge t pledge =
  let version = Pledge.version pledge in
  if version < audit_version t then begin
    t.late <- t.late + 1;
    Stats.incr t.stats "auditor.late_pledges";
    (* Conforming clients cannot be late (the lag slack guarantees it),
       so a late pledge is a weak signal that somebody is replaying or
       stalling — worth a suspicion bump, never a conviction. *)
    note_suspicion t ~slave:pledge.Pledge.slave_id ~amount:0.5
  end
  else if
    (if t.config.Config.audit_adaptive then begin
       let p = adaptive_probability t ~slave:pledge.Pledge.slave_id in
       p < 1.0 && not (Prng.bernoulli t.rng p)
     end
     else
       t.config.Config.audit_fraction < 1.0
       && not (Prng.bernoulli t.rng t.config.Config.audit_fraction))
  then Stats.incr t.stats "auditor.sampled_out"
  else if t.backlog >= t.config.Config.auditor_queue_capacity then begin
    (* Bounded intake: during outages it is better to shed load (and
       count it) than to queue without bound — dropped pledges only
       cost detection coverage, never correctness. *)
    t.overload_drops <- t.overload_drops + 1;
    Stats.incr t.stats "auditor.overload_drops";
    emit t (Event.Audit_overload { backlog = t.backlog })
  end
  else begin
    Queue.push pledge (queue_for t version);
    t.backlog <- t.backlog + 1;
    Stats.incr t.stats "auditor.pledges_received";
    note_backlog t;
    pump t
  end

let on_committed_write t ~entry ~commit_time =
  (* Keep the future-write list ordered by version; duplicates (same
     commit observed from several masters) are dropped. *)
  let version = entry.Oplog.version in
  if version > audit_version t
     && not (List.exists (fun (e, _) -> e.Oplog.version = version) t.committed)
  then begin
    t.committed <-
      List.sort (fun (a, _) (b, _) -> Int.compare a.Oplog.version b.Oplog.version)
        ((entry, commit_time) :: t.committed);
    pump t
  end
