(** Clients (§2, §3).

    After the setup phase a client holds one master and one slave
    connection.  Reads go to the slave and come back with a pledge the
    client verifies (§3.2); with a small probability the client
    double-checks against the master (§3.3); otherwise it forwards the
    pledge to the auditor *before* accepting (§3.4).  Mismatches at
    the same content version are immediate discovery: the pledge is
    sent to the master as proof (§3.5).

    The connection endpoints are closures installed by the system
    layer so that reassignment after an exclusion or a master crash is
    transparent to the state machine here. *)

type read_mode =
  | Single  (** the base protocol *)
  | Quorum of int  (** §4 variant 2: same read to k slaves *)

type read_report = {
  query : Secrep_store.Query.t;
  request : int;
      (** causal lineage id: [client_id * 1_000_000 + per-client seq];
          stamped on every event this read generated *)
  outcome :
    [ `Accepted of Secrep_store.Query_result.t
    | `Served_by_master of Secrep_store.Query_result.t
    | `Gave_up ];
  version : int;  (** content version the result was computed at; -1 if gave up *)
  latency : float;
  retries : int;
  double_checked : bool;
  caught_slave : int option;  (** immediate discovery on this read *)
  served_by : int option;
      (** slave that served the accepted answer; [None] for by-master
          and gave-up outcomes.  The fuzz harness keys its
          eventual-detection invariant on this. *)
}

type env = {
  now : unit -> float;
  schedule : delay:float -> (unit -> unit) -> unit;
  slave_id : unit -> int;
  slave_public : unit -> Secrep_crypto.Sig_scheme.public;
  master_public : unit -> Secrep_crypto.Sig_scheme.public;
  send_read :
    request:int ->
    query:Secrep_store.Query.t ->
    reply:(Slave.read_reply option -> unit) ->
    unit;
  send_read_to :
    slave_id:int ->
    request:int ->
    query:Secrep_store.Query.t ->
    reply:(Slave.read_reply option -> unit) ->
    unit;
  quorum_candidates : unit -> int list;
      (** Slave ids available for quorum reads (assigned slave first). *)
  public_of_slave : int -> Secrep_crypto.Sig_scheme.public option;
  send_double_check :
    query:Secrep_store.Query.t -> reply:(Master.double_check_reply -> unit) -> unit;
  send_sensitive :
    query:Secrep_store.Query.t ->
    reply:((Secrep_store.Query_result.t * int) option -> unit) ->
    unit;
  send_write :
    op:Secrep_store.Oplog.op -> reply:(Master.write_ack -> unit) -> unit;
  forward_pledge : Pledge.t -> unit;
  report_proof : Pledge.t -> unit;
  note_nonce_reject : slave:int -> unit;
      (** A pledge bound to the wrong read nonce was rejected (replay
          suspicion, not cryptographic proof) — the system bumps the
          auditors' suspicion score for [slave]. *)
  note_stale_reject : slave:int -> unit;
      (** A pledge failed the §3.1 freshness check at read time.  The
          client refuses it, so the auditor never sees it in the pledge
          stream; this side channel is the only way the weak signal
          (replayed or frozen replica) reaches the adaptive sampler. *)
  reconnect : avoid:int list -> unit;
      (** Redo the setup phase (new slave, possibly new master).
          [avoid] lists slave ids the client's circuit breakers have
          quarantined; the system should route around them when any
          alternative exists. *)
}

type t

val create :
  id:int ->
  rng:Secrep_crypto.Prng.t ->
  config:Config.t ->
  env:env ->
  stats:Secrep_sim.Stats.t ->
  ?trace:Secrep_sim.Trace.t ->
  ?spans:Secrep_sim.Span.t ->
  ?max_latency_override:float ->
  unit ->
  t
(** [max_latency_override] implements the §3.2 refinement where slow
    clients pick their own freshness bound. *)

val id : t -> int

val request_id_stride : int
(** Request ids are [client_id * request_id_stride + seq] (seq is
    1-based), so tooling can decode the issuing client from a bare id. *)

val read :
  t ->
  ?level:Security_level.t ->
  ?mode:read_mode ->
  Secrep_store.Query.t ->
  on_done:(read_report -> unit) ->
  unit

val write : t -> Secrep_store.Oplog.op -> on_done:(Master.write_ack -> unit) -> unit

val reads_issued : t -> int
val reads_accepted : t -> int
val reads_given_up : t -> int
val stale_rejections : t -> int

val read_timeouts : t -> int
(** Read attempts that expired after [read_timeout_factor *.
    max_latency] without a reply. *)

val degraded_reads : t -> int
(** Reads served by the trusted master because no healthy slave
    remained (only with [Config.degraded_reads]). *)

val breaker_opened : t -> int
(** Times a per-slave circuit breaker tripped ([breaker_threshold]
    consecutive timeouts) and quarantined the slave. *)

val breaker_closed : t -> int
(** Times an open breaker closed again: a half-open probe after
    [breaker_cooldown] succeeded — the "healed" signal. *)

val is_quarantined : t -> slave_id:int -> bool
val quarantined : t -> int list
(** Slave ids currently quarantined by this client's breakers. *)

val on_slave_excluded : t -> slave_id:int -> int
(** §3.5 rollback hook: called when a slave is excluded; returns how
    many of this client's recently accepted reads came from it (the
    reads an application would roll back).  They are counted in
    [tainted_reads] and in the [client.reads_tainted] stat. *)

val tainted_reads : t -> int
