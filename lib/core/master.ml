module Sim = Secrep_sim.Sim
module Work_queue = Secrep_sim.Work_queue
module Stats = Secrep_sim.Stats
module Trace = Secrep_sim.Trace
module Event = Secrep_sim.Event
module Span = Secrep_sim.Span
module Process = Secrep_sim.Process
module Prng = Secrep_crypto.Prng
module Sig_scheme = Secrep_crypto.Sig_scheme
module Store = Secrep_store.Store
module Oplog = Secrep_store.Oplog
module Query = Secrep_store.Query
module Query_eval = Secrep_store.Query_eval
module Canonical = Secrep_store.Canonical

type write_ack = Committed of { version : int } | Denied of string

type double_check_reply = Checked of { digest : string; version : int } | Throttled

type proof_verdict = Slave_guilty | Pledge_invalid of string | Inconclusive of string

type slave_entry = { slave : Slave.t; send : Slave.t -> (unit -> unit) -> unit }

type t = {
  sim : Sim.t;
  id : int;
  config : Config.t;
  content : Content_key.t;
  key : Sig_scheme.keypair;
  certificate : Certificate.t;
  store : Store.t;
  oplog : Oplog.t;
  work : Work_queue.t;
  stats : Stats.t;
  trace : Trace.t option;
  spans : Span.t option;
  greedy : Greedy.t;
  order_write : origin:int -> write_id:int -> Oplog.op -> unit;
  mutable acl : int list option;
  slaves : (int, slave_entry) Hashtbl.t;
  mutable pending_writes : (int * (write_ack -> unit)) list; (* write_id, ack *)
  mutable next_write_id : int;
  mutable next_apply_at : float; (* earliest time the next commit may apply *)
  mutable committed_observer : (Oplog.entry -> commit_time:float -> unit) option;
  mutable alive : bool;
  mutable keepalive_proc : Process.t option;
  mutable writes_committed : int;
  mutable last_commit_time : float;
  (* §3: masters periodically broadcast their slave list to the master
     set so survivors can divide a crashed master's slaves.  This table
     holds the most recent list heard from each peer. *)
  peer_slave_sets : (int, int list) Hashtbl.t;
}

let source t = Printf.sprintf "master-%d" t.id

let trace t fmt =
  Printf.ksprintf
    (fun s ->
      match t.trace with
      | Some tr -> Trace.log tr ~time:(Sim.now t.sim) ~source:(source t) s
      | None -> ())
    fmt

let emit t event =
  match t.trace with
  | Some tr -> Trace.emit tr ~time:(Sim.now t.sim) ~source:(source t) event
  | None -> ()

let span t ~duration name =
  match t.spans with
  | Some spans -> Span.record spans ~source:(source t) ~start:(Sim.now t.sim) ~duration name
  | None -> ()

let create sim ~rng ~id ~config ~content ~order_write ~stats ?trace:trace_buf ?spans () =
  let key = Sig_scheme.generate config.Config.scheme rng in
  let certificate =
    Certificate.issue content ~master_id:id
      ~address:(Printf.sprintf "master-%d.sim:7000" id)
      (Sig_scheme.public_of key)
  in
  {
    sim;
    id;
    config;
    content;
    key;
    certificate;
    store = Store.create ();
    oplog = Oplog.create ();
    work = Work_queue.create sim ();
    stats;
    trace = trace_buf;
    spans;
    greedy =
      Greedy.create ~window:config.Config.greedy_window ~factor:config.Config.greedy_factor
        ~min_samples:config.Config.greedy_min_samples ~rng:(Prng.split rng);
    order_write;
    acl = None;
    slaves = Hashtbl.create 16;
    pending_writes = [];
    next_write_id = 0;
    next_apply_at = 0.0;
    committed_observer = None;
    alive = true;
    keepalive_proc = None;
    writes_committed = 0;
    last_commit_time = neg_infinity;
    peer_slave_sets = Hashtbl.create 8;
  }

let id t = t.id
let public t = Sig_scheme.public_of t.key
let keypair t = t.key
let certificate t = t.certificate
let store t = t.store
let version t = Store.version t.store
let work t = t.work
let set_acl t ~allowed_writers = t.acl <- allowed_writers
let on_write_committed t f = t.committed_observer <- Some f
let writes_committed t = t.writes_committed
let last_commit_time t = t.last_commit_time

let make_keepalive t =
  Keepalive.make ~master_key:t.key
    ~content_id:(Content_key.content_id t.content)
    ~master_id:t.id ~version:(version t) ~now:(Sim.now t.sim)

let push_to_slave t entry_list =
  let keepalive = make_keepalive t in
  fun { slave; send } ->
    if not (Slave.is_excluded slave) then
      send slave (fun () -> Slave.receive_update slave ~entries:entry_list ~keepalive)

let broadcast_to_slaves t entry_list =
  let push = push_to_slave t entry_list in
  Hashtbl.iter (fun _ entry -> push entry) t.slaves

let add_slave t slave ~send =
  Hashtbl.replace t.slaves (Slave.id slave) { slave; send };
  Slave.set_master slave ~master_id:t.id;
  Slave.on_resync_needed slave (fun ~slave_id ~from_version ->
      match Hashtbl.find_opt t.slaves slave_id with
      | Some entry when t.alive ->
        let missing = Oplog.entries_after t.oplog from_version in
        Stats.incr t.stats "master.resyncs_served";
        let keepalive = make_keepalive t in
        entry.send entry.slave (fun () ->
            Slave.receive_update entry.slave ~entries:missing ~keepalive)
      | Some _ | None -> ());
  (* Bring the newcomer up to date immediately. *)
  let all = Oplog.entries_after t.oplog (Slave.version slave) in
  (push_to_slave t all) { slave; send }

let remove_slave t ~slave_id = Hashtbl.remove t.slaves slave_id

let slave_ids t = Hashtbl.fold (fun id _ acc -> id :: acc) t.slaves [] |> List.sort Int.compare

let assign_slave t ~rng ~excluding =
  let candidates =
    Hashtbl.fold
      (fun id entry acc ->
        if (not (Slave.is_excluded entry.slave)) && not (List.mem id excluding) then
          entry.slave :: acc
        else acc)
      t.slaves []
  in
  match candidates with
  | [] -> None
  | _ :: _ ->
    let arr = Array.of_list (List.sort (fun a b -> Int.compare (Slave.id a) (Slave.id b)) candidates) in
    Some (Prng.pick rng arr)

let record_peer_slaves t ~master ~slaves = Hashtbl.replace t.peer_slave_sets master slaves

let peer_slaves t ~of_ =
  match Hashtbl.find_opt t.peer_slave_sets of_ with Some l -> l | None -> []

let adopt_slaves t ~from =
  Hashtbl.iter (fun id entry ->
      Hashtbl.replace t.slaves id entry;
      Slave.set_master entry.slave ~master_id:t.id)
    from.slaves;
  Hashtbl.reset from.slaves

let bootstrap t entries =
  List.iter
    (fun (entry : Oplog.entry) ->
      Store.apply_entry t.store entry;
      Oplog.append t.oplog entry)
    entries

(* -- writes -------------------------------------------------------- *)

let handle_write t ~client ~op ~reply =
  if not t.alive then ()
  else begin
    let allowed = match t.acl with None -> true | Some ids -> List.mem client ids in
    if not allowed then begin
      Stats.incr t.stats "master.writes_denied";
      reply (Denied (Printf.sprintf "client %d is not permitted to write" client))
    end
    else begin
      let write_id = t.next_write_id in
      t.next_write_id <- write_id + 1;
      t.pending_writes <- (write_id, reply) :: t.pending_writes;
      Stats.incr t.stats "master.writes_submitted";
      t.order_write ~origin:t.id ~write_id op
    end
  end

let apply_committed t ~origin ~write_id op =
  let entry = { Oplog.version = version t + 1; op } in
  Store.apply t.store op;
  Oplog.append t.oplog entry;
  t.writes_committed <- t.writes_committed + 1;
  t.last_commit_time <- Sim.now t.sim;
  Stats.incr t.stats "master.writes_committed";
  emit t (Event.Write_committed { master = t.id; version = entry.Oplog.version });
  broadcast_to_slaves t [ entry ];
  (match t.committed_observer with
  | Some f -> f entry ~commit_time:(Sim.now t.sim)
  | None -> ());
  if origin = t.id then begin
    match List.assoc_opt write_id t.pending_writes with
    | Some reply ->
      t.pending_writes <- List.remove_assoc write_id t.pending_writes;
      reply (Committed { version = entry.Oplog.version })
    | None -> ()
  end

let on_delivered_write t ~origin ~write_id ~op =
  if t.alive then begin
    (* §3.1: consecutive commits must be at least max_latency apart so a
       read any second write depends on has absorbed the first.  All
       masters see the same delivery order and apply the same spacing
       rule, so their stores stay identical. *)
    let now = Sim.now t.sim in
    let apply_at = Float.max now t.next_apply_at in
    t.next_apply_at <- apply_at +. t.config.Config.max_latency;
    let cost = t.config.Config.write_cost in
    ignore
      (Sim.schedule t.sim ~delay:(apply_at -. now) (fun () ->
           if t.alive then
             Work_queue.submit t.work ~cost (fun () ->
                 if t.alive then apply_committed t ~origin ~write_id op)))
  end

(* -- keep-alives ---------------------------------------------------- *)

let start_keepalive t =
  match t.keepalive_proc with
  | Some _ -> ()
  | None ->
    let proc =
      Process.periodic t.sim ~period:t.config.Config.keepalive_period (fun () ->
          if t.alive then begin
            Stats.incr t.stats "master.keepalives_sent";
            emit t (Event.Keepalive_sent { master = t.id; version = version t });
            span t ~duration:t.config.Config.signature_cost "sign";
            broadcast_to_slaves t []
          end)
    in
    t.keepalive_proc <- Some proc

(* -- reads on the master -------------------------------------------- *)

let execute_query_cost t query =
  match Query_eval.execute t.store query with
  | Error msg -> Error msg
  | Ok { result; scanned } ->
    let cost =
      Query_eval.cost_seconds ~scanned ~cost_class:(Query.cost_class query)
        ~per_doc:t.config.Config.per_doc_cost
    in
    Ok (result, cost)

let handle_double_check t ~client ~query ~reply =
  if not t.alive then ()
  else if not (Greedy.should_serve t.greedy ~client ~now:(Sim.now t.sim)) then begin
    Stats.incr t.stats "master.double_checks_throttled";
    reply Throttled
  end
  else begin
    match execute_query_cost t query with
    | Error _ -> reply Throttled
    | Ok (result, cost) ->
      Stats.incr t.stats "master.double_checks_served";
      span t ~duration:cost "query_eval";
      let v = version t in
      Work_queue.submit t.work ~cost (fun () ->
          if t.alive then
            reply (Checked { digest = Canonical.result_digest result; version = v }))
  end

let handle_sensitive_read t ~client:_ ~query ~reply =
  if not t.alive then ()
  else begin
    match execute_query_cost t query with
    | Error _ -> reply None
    | Ok (result, cost) ->
      Stats.incr t.stats "master.sensitive_reads";
      span t ~duration:cost "query_eval";
      let v = version t in
      Work_queue.submit t.work ~cost (fun () -> if t.alive then reply (Some (result, v)))
  end

(* -- corrective action ----------------------------------------------- *)

let handle_proof t ~proof ~slave_public =
  if not (Pledge.verify_signature ~slave_public proof) then
    Pledge_invalid "pledge signature does not verify"
  else begin
    let pledged_version = Pledge.version proof in
    if pledged_version <> version t then
      Inconclusive
        (Printf.sprintf "pledge is for version %d, master is at %d; deferring to the auditor"
           pledged_version (version t))
    else begin
      match Query_eval.execute t.store proof.Pledge.query with
      | Error msg -> Pledge_invalid ("query does not execute: " ^ msg)
      | Ok { result; _ } ->
        if String.equal (Canonical.result_digest result) proof.Pledge.result_digest then
          Inconclusive "slave's digest matches the correct result"
        else begin
          Stats.incr t.stats "master.slaves_convicted";
          trace t "slave %d convicted by pledge (version %d)" proof.Pledge.slave_id
            pledged_version;
          Slave_guilty
        end
    end
  end

let crash t =
  if t.alive then begin
    t.alive <- false;
    (match t.keepalive_proc with Some p -> Process.stop p | None -> ());
    trace t "crash";
    Stats.incr t.stats "master.crashes"
  end

let is_alive t = t.alive
