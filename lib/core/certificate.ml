module Sig_scheme = Secrep_crypto.Sig_scheme

type t = {
  content_id : string;
  master_id : int;
  address : string;
  master_public : Sig_scheme.public;
  signature : string;
}

(* The signature must bind the full key material, not a short key id:
   an id alone would let an attacker rewrite the key bytes inside a
   certificate without invalidating it (found by wire mutation
   fuzzing — HMAC key ids do not depend on the secret). *)
let payload ~content_id ~master_id ~address ~master_public =
  Printf.sprintf "cert|%s|%d|%s|%s" content_id master_id address
    (Sig_scheme.encode_public master_public)

let issue content ~master_id ~address master_public =
  let content_id = Content_key.content_id content in
  let signature =
    Content_key.sign content (payload ~content_id ~master_id ~address ~master_public)
  in
  { content_id; master_id; address; master_public; signature }

let signed_payload t =
  payload ~content_id:t.content_id ~master_id:t.master_id ~address:t.address
    ~master_public:t.master_public

let verify ~content_public t =
  Content_key.verify_id ~content_id:t.content_id content_public
  && Sig_scheme.verify content_public ~msg:(signed_payload t) ~signature:t.signature
