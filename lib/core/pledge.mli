(** Pledge packets (§3.2): for every read it serves, a slave signs
    (query, SHA-1 of the result, latest master keep-alive).  An
    incorrect answer turns the pledge into irrefutable proof of
    misbehaviour (§3.3) — and because only the slave can produce its
    signature, a client cannot frame an innocent slave.

    A slave may amortize one signature over many pledges: it signs the
    root of a Merkle tree whose leaves are the pledge payloads, and each
    client receives its pledge with an inclusion proof ([Batched]).
    Either mode carries the same evidentiary weight — the proof path is
    collision-resistant, so a batched pledge still pins the slave to
    exactly one (query, digest, keep-alive) triple. *)

type sig_mode =
  | Single  (** signature directly over this pledge's payload *)
  | Batched of { root : string; proof : Secrep_crypto.Merkle.proof }
      (** signature over the batch root; the proof places this pledge's
          payload among the leaves *)

type t = {
  slave_id : int;
  query : Secrep_store.Query.t;
  result_digest : string;  (** SHA-1 of the canonical result *)
  keepalive : Keepalive.t;  (** master-signed version + timestamp *)
  nonce : int;
      (** the client-minted read nonce this pledge is bound to (the
          read's lineage request id); 0 = legacy pledge without a
          nonce.  Covered by the signature, so a replayed pledge
          carries its original nonce and fails the client's check. *)
  signature : string;
      (** slave's signature — over the payload ([Single]) or the batch
          root ([Batched]) *)
  mode : sig_mode;
}

val make :
  ?nonce:int ->
  slave_key:Secrep_crypto.Sig_scheme.keypair ->
  slave_id:int ->
  query:Secrep_store.Query.t ->
  result_digest:string ->
  keepalive:Keepalive.t ->
  unit ->
  t
(** Individually-signed ([Single]) pledge.  [nonce] defaults to 0
    (legacy, un-nonced payload). *)

val payload :
  ?nonce:int ->
  slave_id:int ->
  query:Secrep_store.Query.t ->
  result_digest:string ->
  keepalive:Keepalive.t ->
  unit ->
  string
(** The pledge payload bytes before a pledge exists — what a batching
    slave hashes into Merkle leaves prior to signing the root.  With
    [nonce = 0] this is byte-identical to the pre-nonce payload;
    otherwise a domain-separated variant that also covers the nonce. *)

val signed_payload : t -> string
(** The byte string a [Single] signature covers — also the Merkle leaf
    a [Batched] proof authenticates. *)

val batch_payload : slave_id:int -> root:string -> string
(** The byte string a batch signature covers; domain-separated from
    single-pledge payloads. *)

val sign_batch :
  slave_key:Secrep_crypto.Sig_scheme.keypair -> slave_id:int -> root:string -> string
(** One signature over a whole batch's Merkle root. *)

val verify_signature : slave_public:Secrep_crypto.Sig_scheme.public -> t -> bool
(** [Single]: check the signature over the payload.  [Batched]: check
    the inclusion proof against the root, then the signature over the
    root. *)

val verify :
  ?expected_nonce:int ->
  slave_public:Secrep_crypto.Sig_scheme.public ->
  master_public:Secrep_crypto.Sig_scheme.public ->
  result:Secrep_store.Query_result.t ->
  now:float ->
  max_latency:float ->
  t ->
  (unit, string) result
(** The full client-side check of §3.2: result hash matches the
    pledge, slave signature valid, keep-alive master-signed, timestamp
    fresh.  When [expected_nonce] is given the pledge must be bound to
    exactly that nonce (replay defense, §2 threat model); the error
    reason then starts with ["nonce"]. *)

val version : t -> int
