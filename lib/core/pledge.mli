(** Pledge packets (§3.2): for every read it serves, a slave signs
    (query, SHA-1 of the result, latest master keep-alive).  An
    incorrect answer turns the pledge into irrefutable proof of
    misbehaviour (§3.3) — and because only the slave can produce its
    signature, a client cannot frame an innocent slave.

    A slave may amortize one signature over many pledges: it signs the
    root of a Merkle tree whose leaves are the pledge payloads, and each
    client receives its pledge with an inclusion proof ([Batched]).
    Either mode carries the same evidentiary weight — the proof path is
    collision-resistant, so a batched pledge still pins the slave to
    exactly one (query, digest, keep-alive) triple. *)

type sig_mode =
  | Single  (** signature directly over this pledge's payload *)
  | Batched of { root : string; proof : Secrep_crypto.Merkle.proof }
      (** signature over the batch root; the proof places this pledge's
          payload among the leaves *)

type t = {
  slave_id : int;
  query : Secrep_store.Query.t;
  result_digest : string;  (** SHA-1 of the canonical result *)
  keepalive : Keepalive.t;  (** master-signed version + timestamp *)
  signature : string;
      (** slave's signature — over the payload ([Single]) or the batch
          root ([Batched]) *)
  mode : sig_mode;
}

val make :
  slave_key:Secrep_crypto.Sig_scheme.keypair ->
  slave_id:int ->
  query:Secrep_store.Query.t ->
  result_digest:string ->
  keepalive:Keepalive.t ->
  t
(** Individually-signed ([Single]) pledge. *)

val payload :
  slave_id:int ->
  query:Secrep_store.Query.t ->
  result_digest:string ->
  keepalive:Keepalive.t ->
  string
(** The pledge payload bytes before a pledge exists — what a batching
    slave hashes into Merkle leaves prior to signing the root. *)

val signed_payload : t -> string
(** The byte string a [Single] signature covers — also the Merkle leaf
    a [Batched] proof authenticates. *)

val batch_payload : slave_id:int -> root:string -> string
(** The byte string a batch signature covers; domain-separated from
    single-pledge payloads. *)

val sign_batch :
  slave_key:Secrep_crypto.Sig_scheme.keypair -> slave_id:int -> root:string -> string
(** One signature over a whole batch's Merkle root. *)

val verify_signature : slave_public:Secrep_crypto.Sig_scheme.public -> t -> bool
(** [Single]: check the signature over the payload.  [Batched]: check
    the inclusion proof against the root, then the signature over the
    root. *)

val verify :
  slave_public:Secrep_crypto.Sig_scheme.public ->
  master_public:Secrep_crypto.Sig_scheme.public ->
  result:Secrep_store.Query_result.t ->
  now:float ->
  max_latency:float ->
  t ->
  (unit, string) result
(** The full client-side check of §3.2: result hash matches the
    pledge, slave signature valid, keep-alive master-signed, timestamp
    fresh. *)

val version : t -> int
