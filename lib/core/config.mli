(** System-wide protocol parameters.

    Every knob the paper names is here: [max_latency] (the
    inconsistency bound, §3), the keep-alive frequency (§3.1), the
    double-check probability (§3.3), the auditor's lag slack and
    verified fraction (§3.4), plus simulation cost constants that give
    queries, signatures and verification realistic relative weight. *)

type t = {
  max_latency : float;
      (** Bound on the staleness a client will accept (seconds). *)
  keepalive_period : float;
      (** How often masters re-sign and push the content version;
          must be well under [max_latency] or honest slaves go
          unavailable. *)
  double_check_probability : float;
      (** Per-read probability a client re-asks its master (§3.3). *)
  audit_enabled : bool;
  audit_fraction : float;
      (** Fraction of forwarded pledges the auditor re-executes (§3.4
          suggests lowering this when the auditor is over-used). *)
  audit_lag_slack : float;
      (** Extra wait (beyond [max_latency]) before the auditor moves
          to the next content version (§3.4). *)
  audit_cache_capacity : int;
      (** Entries in the auditor's result cache ("cache results in the
          simplest case", §3.4); 1 effectively disables it — the E9
          ablation knob. *)
  scheme : Secrep_crypto.Sig_scheme.scheme;
  per_doc_cost : float;  (** simulated seconds per document scanned *)
  signature_cost : float;  (** simulated seconds per signature made *)
  verify_cost : float;  (** simulated seconds per signature check *)
  write_cost : float;  (** simulated seconds to apply a write op *)
  greedy_window : float;
      (** Seconds of history used for greedy-client detection. *)
  greedy_factor : float;
      (** Clients whose double-check rate exceeds [greedy_factor] times
          the cohort average are throttled (§3.3). *)
  greedy_min_samples : int;
      (** Minimum double-checks before a client can be suspected. *)
  read_retry_limit : int;
      (** Stale/failed read retries before a client gives up. *)
  read_timeout_factor : float;
      (** A read attempt times out after [read_timeout_factor *.
          max_latency].  The factor must be >= 1: a pledge signed at
          send time stays acceptably fresh for [max_latency] (the
          keep-alive bound, §3.1), so 2x covers the round trip to a
          live slave; larger values trade tail-latency tolerance for
          slower failure detection. *)
  retry_backoff_base : float;
      (** First retry delay (seconds); doubles via
          [retry_backoff_factor] up to [retry_backoff_cap]. *)
  retry_backoff_factor : float;
  retry_backoff_cap : float;
  retry_jitter : float;
      (** Fraction of the backoff delay randomised (deterministically,
          from the client's PRNG) to de-synchronise retry storms; 0
          disables jitter. *)
  breaker_threshold : int;
      (** Consecutive timeouts against one slave before the client's
          circuit breaker opens and it routes around that slave. *)
  breaker_cooldown : float;
      (** Seconds an open breaker quarantines a slave before a
          half-open probe is allowed again. *)
  degraded_reads : bool;
      (** When no healthy slave remains, fall back to reading from the
          trusted master (counted — it sacrifices offloading). *)
  auditor_queue_capacity : int;
      (** Max pledges the auditor will hold across its intake queues;
          beyond it new submissions are dropped and counted instead of
          growing without bound during outages. *)
  pledge_batch_size : int;
      (** Pledges a slave accumulates before signing one Merkle root
          over the batch and answering each read with its inclusion
          proof.  1 (the default) signs every pledge individually and
          reproduces the unbatched protocol exactly. *)
  pledge_batch_window : float;
      (** Max seconds a partially-filled batch may wait before being
          flushed anyway; must stay well under [max_latency] or the
          queued pledges go stale while parked. *)
  audit_dedup : bool;
      (** Re-execute each distinct (version, query) once and settle
          repeat pledges against the memoized digest (off by default;
          the auditor then behaves exactly as before). *)
  read_nonces : bool;
      (** Clients mint a per-read nonce (the read's lineage request id)
          that slaves must echo inside the signed pledge payload;
          clients reject pledges bound to a different nonce, closing
          the replay attack.  Off by default: pledges then carry nonce
          0 and keep the legacy payload and wire encoding. *)
  audit_adaptive : bool;
      (** Suspicion-weighted audit sampling: the auditor reweights
          [audit_fraction] per slave by its decayed suspicion score
          (double-check disagreements, late pledges, nonce rejects)
          while keeping the expected budget, and quarantines slaves
          above [quarantine_threshold] (probation: 100% audit).  Off by
          default — uniform sampling, bit-identical to the seed. *)
  suspicion_tau : float;
      (** E-folding time (seconds) of the suspicion EWMA decay. *)
  suspicion_floor : float;
      (** Lower clamp on the adaptive sampling multiplier, so a slave
          that has never misbehaved is still audited at
          [suspicion_floor *. audit_fraction] — no one escapes the
          audit entirely. *)
  quarantine_threshold : float;
      (** Suspicion score at which a slave enters quarantine. *)
  quarantine_duration : float;
      (** Seconds a quarantined slave stays on probation (audited at
          100%) before its score is re-evaluated. *)
  parallel_domains : int;
      (** Domains a sharded deployment may use to advance its shards
          in parallel.  0 (the default) and 1 both run the sequential
          lockstep scheduler, bit-identical to the seed; [K > 1] runs
          each slice of each shard on a bounded pool of [K] OCaml
          domains while the coordinator merges the per-shard event
          buffers back into the exact sequential stream order
          ([(sim_time, shard, seq)]).  Single-system runs ignore it. *)
}

val default : t

val validate : t -> (unit, string) result
(** Rejects inconsistent settings (e.g. keep-alive period >= max
    latency, probabilities outside [0,1]). *)

val validate_exn : t -> t
