module Stats = Secrep_sim.Stats
module Trace = Secrep_sim.Trace
module Event = Secrep_sim.Event
module Span = Secrep_sim.Span
module Prng = Secrep_crypto.Prng
module Query = Secrep_store.Query
module Query_result = Secrep_store.Query_result
module Canonical = Secrep_store.Canonical

type read_mode = Single | Quorum of int

type read_report = {
  query : Query.t;
  request : int;
  outcome :
    [ `Accepted of Query_result.t | `Served_by_master of Query_result.t | `Gave_up ];
  version : int;
  latency : float;
  retries : int;
  double_checked : bool;
  caught_slave : int option;
  served_by : int option;
}

type env = {
  now : unit -> float;
  schedule : delay:float -> (unit -> unit) -> unit;
  slave_id : unit -> int;
  slave_public : unit -> Secrep_crypto.Sig_scheme.public;
  master_public : unit -> Secrep_crypto.Sig_scheme.public;
  send_read : request:int -> query:Query.t -> reply:(Slave.read_reply option -> unit) -> unit;
  send_read_to :
    slave_id:int ->
    request:int ->
    query:Query.t ->
    reply:(Slave.read_reply option -> unit) ->
    unit;
  quorum_candidates : unit -> int list;
  public_of_slave : int -> Secrep_crypto.Sig_scheme.public option;
  send_double_check :
    query:Query.t -> reply:(Master.double_check_reply -> unit) -> unit;
  send_sensitive :
    query:Query.t -> reply:((Query_result.t * int) option -> unit) -> unit;
  send_write : op:Secrep_store.Oplog.op -> reply:(Master.write_ack -> unit) -> unit;
  forward_pledge : Pledge.t -> unit;
  report_proof : Pledge.t -> unit;
  note_nonce_reject : slave:int -> unit;
  note_stale_reject : slave:int -> unit;
  reconnect : avoid:int list -> unit;
}

(* Per-slave health record.  [open_until] is the quarantine deadline;
   once it passes the breaker is half-open: the slave may be probed
   again, and the first success closes the breaker. *)
type breaker = {
  mutable consecutive_timeouts : int;
  mutable open_until : float;
  mutable is_open : bool;
}

type t = {
  id : int;
  rng : Prng.t;
  config : Config.t;
  env : env;
  stats : Stats.t;
  trace : Trace.t option;
  spans : Span.t option;
  max_latency : float; (* effective freshness bound for this client *)
  mutable reads_issued : int;
  mutable reads_accepted : int;
  mutable reads_given_up : int;
  mutable stale_rejections : int;
  (* §3.5: on delayed discovery "the harm may be undone, by rolling
     back the client to the state before that particular read".  We
     keep a bounded log of accepted reads by serving slave so an
     exclusion can identify (and count) the reads to roll back. *)
  mutable accepted_log : (int * float) list; (* slave_id, accept time; newest first *)
  mutable tainted_reads : int;
  breakers : (int, breaker) Hashtbl.t;
  mutable timeouts : int;
  mutable degraded_served : int;
  mutable breaker_opened : int;
  mutable breaker_closed : int;
}

let create ~id ~rng ~config ~env ~stats ?trace ?spans ?max_latency_override () =
  let max_latency =
    match max_latency_override with
    | Some m ->
      if m <= 0.0 then invalid_arg "Client.create: max_latency_override must be positive";
      m
    | None -> config.Config.max_latency
  in
  {
    id;
    rng;
    config;
    env;
    stats;
    trace;
    spans;
    max_latency;
    reads_issued = 0;
    reads_accepted = 0;
    reads_given_up = 0;
    stale_rejections = 0;
    accepted_log = [];
    tainted_reads = 0;
    breakers = Hashtbl.create 8;
    timeouts = 0;
    degraded_served = 0;
    breaker_opened = 0;
    breaker_closed = 0;
  }

let source t = Printf.sprintf "client-%d" t.id

let emit t event =
  match t.trace with
  | Some tr -> Trace.emit tr ~time:(t.env.now ()) ~source:(source t) event
  | None -> ()

(* Pledge verification is instantaneous on the simulated clock (the
   client is not a modelled CPU), so the phase is recorded with the
   cost model's verify cost. *)
let verify_span t =
  match t.spans with
  | Some spans ->
    Span.record spans ~source:(source t) ~start:(t.env.now ())
      ~duration:t.config.Config.verify_cost "verify"
  | None -> ()

let id t = t.id
let reads_issued t = t.reads_issued
let reads_accepted t = t.reads_accepted
let reads_given_up t = t.reads_given_up
let stale_rejections t = t.stale_rejections
let read_timeouts t = t.timeouts
let degraded_reads t = t.degraded_served
let breaker_opened t = t.breaker_opened
let breaker_closed t = t.breaker_closed

(* How long to wait for a slave before assuming it dropped the request.
   The default factor of 2x the freshness bound is generous: an answer
   that slow would be rejected as stale anyway (§3.1). *)
let read_timeout t = t.config.Config.read_timeout_factor *. t.max_latency

(* -- per-slave health and circuit breakers --------------------------- *)

let breaker_for t slave_id =
  match Hashtbl.find_opt t.breakers slave_id with
  | Some b -> b
  | None ->
    let b = { consecutive_timeouts = 0; open_until = neg_infinity; is_open = false } in
    Hashtbl.add t.breakers slave_id b;
    b

let is_quarantined t ~slave_id =
  match Hashtbl.find_opt t.breakers slave_id with
  | Some b -> b.is_open && t.env.now () < b.open_until
  | None -> false

let quarantined t =
  let now = t.env.now () in
  Hashtbl.fold
    (fun id b acc -> if b.is_open && now < b.open_until then id :: acc else acc)
    t.breakers []

let note_timeout t ~slave_id =
  t.timeouts <- t.timeouts + 1;
  Stats.incr t.stats "client.read_timeouts";
  if slave_id >= 0 then begin
    let b = breaker_for t slave_id in
    b.consecutive_timeouts <- b.consecutive_timeouts + 1;
    if b.consecutive_timeouts >= t.config.Config.breaker_threshold then begin
      if not b.is_open then begin
        t.breaker_opened <- t.breaker_opened + 1;
        Stats.incr t.stats "client.breaker_opened";
        emit t (Event.Breaker_opened { client = t.id; slave = slave_id })
      end;
      b.is_open <- true;
      b.open_until <- t.env.now () +. t.config.Config.breaker_cooldown
    end
  end

let note_slave_success t ~slave_id =
  if slave_id >= 0 then begin
    let b = breaker_for t slave_id in
    if b.is_open then begin
      b.is_open <- false;
      t.breaker_closed <- t.breaker_closed + 1;
      Stats.incr t.stats "client.breaker_closed";
      emit t (Event.Breaker_closed { client = t.id; slave = slave_id })
    end;
    b.consecutive_timeouts <- 0;
    b.open_until <- neg_infinity
  end

(* Exponential backoff with deterministic jitter: retry [n] waits in
   [[d*(1-jitter), d]] where [d = min(cap, base * factor^n)], sampled
   from the client's seeded PRNG so runs replay exactly. *)
let backoff_delay t ~retries =
  let c = t.config in
  let d =
    Float.min c.Config.retry_backoff_cap
      (c.Config.retry_backoff_base
      *. (c.Config.retry_backoff_factor ** float_of_int retries))
  in
  let j = c.Config.retry_jitter in
  (d *. (1.0 -. j)) +. (d *. j *. Prng.float t.rng)

let give_up t ~query ~request ~start ~retries ~double_checked ~caught =
  t.reads_given_up <- t.reads_given_up + 1;
  Stats.incr t.stats "client.reads_given_up";
  let latency = t.env.now () -. start in
  emit t
    (Event.Read_answered
       { client = t.id; request; slave = -1; outcome = "gave-up"; version = -1; latency });
  {
    query;
    request;
    outcome = `Gave_up;
    version = -1;
    latency;
    retries;
    double_checked;
    caught_slave = caught;
    served_by = None;
  }

(* Only reads accepted within the audit horizon can still turn out to
   be wrong; older entries are pruned. *)
let log_window t = 20.0 *. t.config.Config.max_latency

let note_accepted t ~slave_id =
  let now = t.env.now () in
  t.accepted_log <-
    (slave_id, now)
    :: List.filter (fun (_, ts) -> now -. ts <= log_window t) t.accepted_log

let on_slave_excluded t ~slave_id =
  let now = t.env.now () in
  let tainted, kept =
    List.partition
      (fun (s, ts) -> s = slave_id && now -. ts <= log_window t)
      t.accepted_log
  in
  t.accepted_log <- kept;
  let n = List.length tainted in
  if n > 0 then begin
    t.tainted_reads <- t.tainted_reads + n;
    Stats.add t.stats "client.reads_tainted" n
  end;
  n

let tainted_reads t = t.tainted_reads

let accept ?served_by t ~query ~request ~result ~version ~start ~retries ~double_checked
    ~caught =
  t.reads_accepted <- t.reads_accepted + 1;
  Stats.incr t.stats "client.reads_accepted";
  (match served_by with
  | Some slave_id ->
    note_accepted t ~slave_id;
    note_slave_success t ~slave_id
  | None -> ());
  let latency = t.env.now () -. start in
  emit t
    (Event.Read_answered
       {
         client = t.id;
         request;
         slave = (match served_by with Some s -> s | None -> -1);
         outcome = "accepted";
         version;
         latency;
       });
  {
    query;
    request;
    outcome = `Accepted result;
    version;
    latency;
    retries;
    double_checked;
    caught_slave = caught;
    served_by;
  }

(* A master read must still time out: during a master crash or a
   client<->master partition the reply never arrives, and the read has
   to be reported failed rather than lost. *)
let master_read t query ~request ~start ~retries ~caught ~on_done =
  let settled = ref false in
  t.env.schedule ~delay:(read_timeout t) (fun () ->
      if not !settled then begin
        settled := true;
        note_timeout t ~slave_id:(-1);
        on_done (give_up t ~query ~request ~start ~retries ~double_checked:false ~caught)
      end);
  t.env.send_sensitive ~query ~reply:(fun reply ->
      if not !settled then begin
        settled := true;
        match reply with
        | Some (result, version) ->
          t.reads_accepted <- t.reads_accepted + 1;
          let latency = t.env.now () -. start in
          emit t
            (Event.Read_answered
               {
                 client = t.id;
                 request;
                 slave = -1;
                 outcome = "by-master";
                 version;
                 latency;
               });
          on_done
            {
              query;
              request;
              outcome = `Served_by_master result;
              version;
              latency;
              retries;
              double_checked = false;
              caught_slave = caught;
              served_by = None;
            }
        | None ->
          on_done (give_up t ~query ~request ~start ~retries ~double_checked:false ~caught)
      end)

let sensitive_read t query ~request ~on_done =
  Stats.incr t.stats "client.sensitive_reads";
  let start = t.env.now () in
  master_read t query ~request ~start ~retries:0 ~caught:None ~on_done

(* Retry budget exhausted: no slave could serve the read.  With
   [degraded_reads] on, fall back to the trusted master — counted,
   since every such read sacrifices the offloading the slaves exist
   for (§2). *)
let exhausted t ~query ~request ~start ~retries ~caught ~on_done =
  if not t.config.Config.degraded_reads then
    on_done (give_up t ~query ~request ~start ~retries ~double_checked:false ~caught)
  else begin
    Stats.incr t.stats "client.degraded_attempts";
    master_read t query ~request ~start ~retries ~caught ~on_done:(fun report ->
        (match report.outcome with
        | `Served_by_master _ ->
          t.degraded_served <- t.degraded_served + 1;
          Stats.incr t.stats "client.degraded_reads"
        | _ -> ());
        on_done report)
  end

(* -- single-slave reads (the base protocol, §3.2-§3.3) --------------- *)

let rec single_attempt t ~query ~request ~dc_probability ~start ~retries ~caught ~on_done =
  if retries > t.config.Config.read_retry_limit then
    exhausted t ~query ~request ~start ~retries ~caught ~on_done
  else begin
    (* Route around a quarantined slave before even sending. *)
    if is_quarantined t ~slave_id:(t.env.slave_id ()) then
      t.env.reconnect ~avoid:(quarantined t);
    let target = t.env.slave_id () in
    let settled = ref false in
    let retry ~reconnect ~caught =
      if not !settled then begin
        settled := true;
        if reconnect then t.env.reconnect ~avoid:(quarantined t);
        Stats.incr t.stats "client.read_retries";
        t.env.schedule ~delay:(backoff_delay t ~retries) (fun () ->
            single_attempt t ~query ~request ~dc_probability ~start ~retries:(retries + 1)
              ~caught ~on_done)
      end
    in
    (* Arm the timeout for an Omit_result attacker or a dead slave. *)
    t.env.schedule ~delay:(read_timeout t) (fun () ->
        if not !settled then begin
          note_timeout t ~slave_id:target;
          retry ~reconnect:true ~caught
        end);
    let slave_public = t.env.slave_public () in
    let master_public = t.env.master_public () in
    t.env.send_read ~request ~query ~reply:(fun reply ->
        if not !settled then begin
          match reply with
          | None -> retry ~reconnect:true ~caught
          | Some { Slave.result; pledge } -> begin
            verify_span t;
            match
              Pledge.verify
                ?expected_nonce:
                  (if t.config.Config.read_nonces then Some request else None)
                ~slave_public ~master_public ~result ~now:(t.env.now ())
                ~max_latency:t.max_latency pledge
            with
            | Error reason ->
              Stats.incr t.stats "client.pledge_rejected";
              if String.length reason >= 5 && String.sub reason 0 5 = "nonce" then begin
                Stats.incr t.stats "client.nonce_rejections";
                t.env.note_nonce_reject ~slave:pledge.Pledge.slave_id
              end;
              emit t
                (Event.Pledge_verified
                   {
                     client = t.id;
                     request;
                     slave = pledge.Pledge.slave_id;
                     version = Pledge.version pledge;
                     ok = false;
                     reason;
                   });
              if String.length reason >= 5 && String.sub reason 0 5 = "stale" then begin
                t.stale_rejections <- t.stale_rejections + 1;
                Stats.incr t.stats "client.stale_rejections";
                t.env.note_stale_reject ~slave:pledge.Pledge.slave_id;
                (* Freshness can recover without switching slaves. *)
                retry ~reconnect:false ~caught
              end
              else retry ~reconnect:true ~caught
            | Ok () ->
              emit t
                (Event.Pledge_verified
                   {
                     client = t.id;
                     request;
                     slave = pledge.Pledge.slave_id;
                     version = Pledge.version pledge;
                     ok = true;
                     reason = "";
                   });
              if Prng.bernoulli t.rng dc_probability then begin
                Stats.incr t.stats "client.double_checks";
                t.env.send_double_check ~query ~reply:(fun dc ->
                    if not !settled then begin
                      let dc_event outcome =
                        emit t
                          (Event.Double_check
                             {
                               client = t.id;
                               request;
                               slave = pledge.Pledge.slave_id;
                               outcome;
                             })
                      in
                      match dc with
                      | Master.Throttled ->
                        dc_event Event.Throttled;
                        (* Quota enforced; fall back to the audit path. *)
                        settled := true;
                        t.env.forward_pledge pledge;
                        on_done
                          (accept t ~served_by:pledge.Pledge.slave_id ~query ~request
                             ~result ~version:(Pledge.version pledge) ~start ~retries
                             ~double_checked:false ~caught)
                      | Master.Checked { digest; version } ->
                        if version <> Pledge.version pledge then
                          (* A write landed in between: inconclusive. *)
                          retry ~reconnect:false ~caught
                        else if String.equal digest pledge.Pledge.result_digest then begin
                          settled := true;
                          Stats.incr t.stats "client.double_checks_passed";
                          dc_event Event.Passed;
                          on_done
                            (accept t ~served_by:pledge.Pledge.slave_id ~query ~request
                               ~result ~version ~start ~retries ~double_checked:true ~caught)
                        end
                        else begin
                          (* Immediate discovery (§3.5). *)
                          Stats.incr t.stats "client.immediate_discoveries";
                          dc_event Event.Mismatch;
                          t.env.report_proof pledge;
                          retry ~reconnect:true ~caught:(Some pledge.Pledge.slave_id)
                        end
                    end)
              end
              else begin
                (* §3.4: forward the pledge *before* accepting. *)
                settled := true;
                t.env.forward_pledge pledge;
                on_done
                  (accept t ~served_by:pledge.Pledge.slave_id ~query ~request ~result
                     ~version:(Pledge.version pledge) ~start ~retries ~double_checked:false
                     ~caught)
              end
          end
        end)
  end

(* -- quorum reads (§4, second variant) -------------------------------- *)

let rec quorum_attempt t ~query ~request ~k ~dc_probability ~start ~retries ~caught
    ~on_done =
  if retries > t.config.Config.read_retry_limit then
    exhausted t ~query ~request ~start ~retries ~caught ~on_done
  else begin
    let candidates =
      List.filter (fun s -> not (is_quarantined t ~slave_id:s)) (t.env.quorum_candidates ())
    in
    let targets = List.filteri (fun i _ -> i < k) candidates in
    if List.length targets < k then
      (* Not enough distinct healthy slaves; degrade to the base protocol. *)
      single_attempt t ~query ~request ~dc_probability ~start ~retries ~caught ~on_done
    else begin
      let settled = ref false in
      let replies = ref [] in
      let outstanding = ref (List.length targets) in
      let retry ~caught =
        if not !settled then begin
          settled := true;
          t.env.reconnect ~avoid:(quarantined t);
          Stats.incr t.stats "client.read_retries";
          t.env.schedule ~delay:(backoff_delay t ~retries) (fun () ->
              quorum_attempt t ~query ~request ~k ~dc_probability ~start
                ~retries:(retries + 1) ~caught ~on_done)
        end
      in
      t.env.schedule ~delay:(read_timeout t) (fun () ->
          if not !settled then begin
            (* Charge the timeout to every slave that never replied. *)
            List.iter
              (fun s ->
                if not (List.mem_assoc s !replies) then note_timeout t ~slave_id:s)
              targets;
            retry ~caught
          end);
      let master_public = t.env.master_public () in
      let conclude () =
        if not !settled then begin
          (* Keep only protocol-valid replies. *)
          let valid =
            List.filter_map
              (fun (slave_id, reply) ->
                match reply with
                | None -> None
                | Some { Slave.result; pledge } -> begin
                  match t.env.public_of_slave slave_id with
                  | None -> None
                  | Some slave_public -> begin
                    verify_span t;
                    match
                      Pledge.verify
                        ?expected_nonce:
                          (if t.config.Config.read_nonces then Some request else None)
                        ~slave_public ~master_public ~result
                        ~now:(t.env.now ()) ~max_latency:t.max_latency pledge
                    with
                    | Ok () ->
                      emit t
                        (Event.Pledge_verified
                           {
                             client = t.id;
                             request;
                             slave = slave_id;
                             version = Pledge.version pledge;
                             ok = true;
                             reason = "";
                           });
                      Some (slave_id, result, pledge)
                    | Error reason ->
                      emit t
                        (Event.Pledge_verified
                           {
                             client = t.id;
                             request;
                             slave = slave_id;
                             version = Pledge.version pledge;
                             ok = false;
                             reason;
                           });
                      if String.length reason >= 5 && String.sub reason 0 5 = "nonce"
                      then begin
                        Stats.incr t.stats "client.nonce_rejections";
                        t.env.note_nonce_reject ~slave:slave_id
                      end
                      else if String.length reason >= 5 && String.sub reason 0 5 = "stale"
                      then t.env.note_stale_reject ~slave:slave_id;
                      None
                  end
                end)
              !replies
          in
          match valid with
          | [] -> retry ~caught
          | (_, first_result, first_pledge) :: rest ->
            let all_agree =
              List.for_all
                (fun (_, _, p) ->
                  String.equal p.Pledge.result_digest first_pledge.Pledge.result_digest
                  && Pledge.version p = Pledge.version first_pledge)
                rest
              && List.length valid = k
            in
            if all_agree then begin
              if Prng.bernoulli t.rng dc_probability then begin
                Stats.incr t.stats "client.double_checks";
                t.env.send_double_check ~query ~reply:(fun dc ->
                    if not !settled then begin
                      let dc_event outcome =
                        emit t
                          (Event.Double_check
                             {
                               client = t.id;
                               request;
                               slave = first_pledge.Pledge.slave_id;
                               outcome;
                             })
                      in
                      match dc with
                      | Master.Throttled ->
                        dc_event Event.Throttled;
                        settled := true;
                        List.iter (fun (_, _, p) -> t.env.forward_pledge p) valid;
                        on_done
                          (accept t ~served_by:first_pledge.Pledge.slave_id ~query ~request
                             ~result:first_result ~version:(Pledge.version first_pledge)
                             ~start ~retries ~double_checked:false ~caught)
                      | Master.Checked { digest; version } ->
                        if version <> Pledge.version first_pledge then retry ~caught
                        else if String.equal digest first_pledge.Pledge.result_digest
                        then begin
                          settled := true;
                          Stats.incr t.stats "client.double_checks_passed";
                          dc_event Event.Passed;
                          on_done
                            (accept t ~served_by:first_pledge.Pledge.slave_id ~query
                               ~request ~result:first_result ~version ~start ~retries
                               ~double_checked:true ~caught)
                        end
                        else begin
                          (* The whole quorum colluded; every pledge is proof. *)
                          dc_event Event.Mismatch;
                          Stats.incr t.stats "client.immediate_discoveries";
                          List.iter (fun (_, _, p) -> t.env.report_proof p) valid;
                          retry ~caught:(Some first_pledge.Pledge.slave_id)
                        end
                    end)
              end
              else begin
                settled := true;
                List.iter (fun (_, _, p) -> t.env.forward_pledge p) valid;
                on_done
                  (accept t ~served_by:first_pledge.Pledge.slave_id ~query ~request
                     ~result:first_result ~version:(Pledge.version first_pledge) ~start
                     ~retries ~double_checked:false ~caught)
              end
            end
            else begin
              (* Disagreement: at least one slave lies; double-check is
                 automatic (§4). *)
              Stats.incr t.stats "client.quorum_mismatches";
              Stats.incr t.stats "client.double_checks";
              t.env.send_double_check ~query ~reply:(fun dc ->
                  if not !settled then begin
                    match dc with
                    | Master.Throttled -> retry ~caught
                    | Master.Checked { digest; version } ->
                      let liars =
                        List.filter
                          (fun (_, _, p) ->
                            Pledge.version p = version
                            && not (String.equal p.Pledge.result_digest digest))
                          valid
                      in
                      List.iter
                        (fun (_, _, p) ->
                          Stats.incr t.stats "client.immediate_discoveries";
                          t.env.report_proof p)
                        liars;
                      let honest =
                        List.find_opt
                          (fun (_, _, p) ->
                            Pledge.version p = version
                            && String.equal p.Pledge.result_digest digest)
                          valid
                      in
                      (match honest with
                      | Some (_, result, pledge) ->
                        settled := true;
                        let caught =
                          match liars with
                          | (liar_id, _, _) :: _ -> Some liar_id
                          | [] -> caught
                        in
                        on_done
                          (accept t ~served_by:pledge.Pledge.slave_id ~query ~request
                             ~result ~version:(Pledge.version pledge) ~start ~retries
                             ~double_checked:true ~caught)
                      | None ->
                        let caught =
                          match liars with
                          | (liar_id, _, _) :: _ -> Some liar_id
                          | [] -> caught
                        in
                        retry ~caught)
                  end)
            end
        end
      in
      List.iter
        (fun slave_id ->
          t.env.send_read_to ~slave_id ~request ~query ~reply:(fun reply ->
              if not !settled then begin
                replies := (slave_id, reply) :: !replies;
                decr outstanding;
                if !outstanding = 0 then conclude ()
              end))
        targets
    end
  end

(* Request ids are globally unique and decodable: client 3's 14th read
   is 3_000_014.  They key the causal lineage the monitor folds over. *)
let request_id_stride = 1_000_000

let read t ?(level = Security_level.Normal) ?(mode = Single) query ~on_done =
  t.reads_issued <- t.reads_issued + 1;
  let request = (t.id * request_id_stride) + t.reads_issued in
  Stats.incr t.stats "client.reads_issued";
  let base = t.config.Config.double_check_probability in
  let mode_tag =
    if Security_level.executes_on_master ~base level then "sensitive"
    else match mode with Single -> "single" | Quorum k -> Printf.sprintf "quorum-%d" k
  in
  emit t (Event.Read_issued { client = t.id; request; mode = mode_tag });
  if Security_level.executes_on_master ~base level then
    sensitive_read t query ~request ~on_done
  else begin
    let dc_probability = Security_level.double_check_probability ~base level in
    let start = t.env.now () in
    match mode with
    | Single ->
      single_attempt t ~query ~request ~dc_probability ~start ~retries:0 ~caught:None
        ~on_done
    | Quorum k ->
      if k < 1 then invalid_arg "Client.read: quorum size must be at least 1";
      quorum_attempt t ~query ~request ~k ~dc_probability ~start ~retries:0 ~caught:None
        ~on_done
  end

let write t op ~on_done =
  Stats.incr t.stats "client.writes_issued";
  t.env.send_write ~op ~reply:on_done
