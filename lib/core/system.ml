module Sim = Secrep_sim.Sim
module Link = Secrep_sim.Link
module Latency = Secrep_sim.Latency
module Stats = Secrep_sim.Stats
module Trace = Secrep_sim.Trace
module Event = Secrep_sim.Event
module Span = Secrep_sim.Span
module Work_queue = Secrep_sim.Work_queue
module Histogram = Secrep_sim.Histogram
module Prng = Secrep_crypto.Prng
module Sig_scheme = Secrep_crypto.Sig_scheme
module Store = Secrep_store.Store
module Snapshot = Secrep_store.Snapshot
module Oplog = Secrep_store.Oplog
module Document = Secrep_store.Document
module Query = Secrep_store.Query
module Query_eval = Secrep_store.Query_eval
module Canonical = Secrep_store.Canonical
module Total_order = Secrep_broadcast.Total_order

type net_profile = {
  master_master : Latency.t;
  master_slave : Latency.t;
  client_slave : Latency.t;
  client_master : Latency.t;
  client_auditor : Latency.t;
  loss : float;
}

let default_net =
  {
    master_master = Latency.Exponential { mean = 0.01; floor = 0.03 };
    master_slave = Latency.Exponential { mean = 0.01; floor = 0.03 };
    client_slave = Latency.Exponential { mean = 0.004; floor = 0.006 };
    client_master = Latency.Exponential { mean = 0.015; floor = 0.035 };
    client_auditor = Latency.Exponential { mean = 0.015; floor = 0.035 };
    loss = 0.0;
  }

let lan_net =
  {
    master_master = Latency.Constant 0.0005;
    master_slave = Latency.Constant 0.0005;
    client_slave = Latency.Constant 0.0002;
    client_master = Latency.Constant 0.0005;
    client_auditor = Latency.Constant 0.0005;
    loss = 0.0;
  }

type endpoint = M of int | S of int | C of int | A

(* Everything the masters agree on goes through the same total-order
   broadcast: client writes, and the periodic slave-list announcements
   of §3 that make master-crash recovery possible. *)
type payload =
  | Write of { origin : int; write_id : int; op : Oplog.op }
  | Slave_list of { master : int; slaves : int list }

type t = {
  sim : Sim.t;
  config : Config.t;
  net : net_profile;
  rng : Prng.t;
  stats : Stats.t;
  trace : Trace.t;
  spans : Span.t;
  corrective : Corrective.t;
  content : Content_key.t;
  directory : Directory.t;
  masters : Master.t array;
  slaves : Slave.t array;
  mutable clients : Client.t array;
  auditors : Auditor.t array;
  group : payload Total_order.t;
  links : (endpoint * endpoint, Link.t) Hashtbl.t;
  (* chaos state: a link is up iff neither endpoint is partitioned, so
     lazily-created links honor cuts that predate them *)
  partitioned : (endpoint, unit) Hashtbl.t;
  crashed_slaves : (int, unit) Hashtbl.t;
  mutable loss_override : float option;
  mutable latency_factor : float;
  (* Byzantine delivery faults (chaos-schedulable; all default off) *)
  mutable duplicate_override : float;
  mutable reorder_override : (int * float) option; (* burst, window *)
  mutable bitflip : float;
  (* assignment state *)
  client_master : int array;
  client_slave : int array;
  slave_master : int array;
  (* ground truth *)
  track_ground_truth : bool;
  oracle : Store.t;
  oracle_snapshots : (int, Snapshot.t) Hashtbl.t;
  mutable oracle_buffer : Oplog.entry list;
  (* observers of every pledge delivered to an auditor (test harness) *)
  mutable pledge_taps : (Pledge.t -> unit) list;
}

let sim t = t.sim
let config t = t.config
let stats t = t.stats
let trace t = t.trace
let spans t = t.spans
let corrective t = t.corrective
let auditor t = t.auditors.(0)
let auditors t = Array.to_list t.auditors
let directory t = t.directory
let content_id t = Content_key.content_id t.content
let n_masters t = Array.length t.masters
let n_slaves t = Array.length t.slaves
let n_clients t = Array.length t.clients
let master t i = t.masters.(i)
let slave t i = t.slaves.(i)
let client t i = t.clients.(i)
let master_of_client t i = t.client_master.(i)
let slave_of_client t i = t.client_slave.(i)
let master_of_slave t i = t.slave_master.(i)
let oracle_version t = Store.version t.oracle

let log t source fmt =
  Printf.ksprintf (fun s -> Trace.log t.trace ~time:(Sim.now t.sim) ~source s) fmt

let latency_for t a b =
  match (a, b) with
  | M _, M _ -> t.net.master_master
  | (M _, S _ | S _, M _) -> t.net.master_slave
  | (C _, S _ | S _, C _) -> t.net.client_slave
  | (C _, M _ | M _, C _) -> t.net.client_master
  | (C _, A | A, C _) -> t.net.client_auditor
  | (M _, A | A, M _) -> t.net.master_master
  | (S _, S _ | S _, A | A, S _ | C _, C _ | A, A) -> t.net.client_master

let endpoint_name = function
  | M i -> Printf.sprintf "m%d" i
  | S i -> Printf.sprintf "s%d" i
  | C i -> Printf.sprintf "c%d" i
  | A -> "aud"

(* Long names for chaos trace events (the fuzz invariants parse these). *)
let node_name = function
  | M i -> Printf.sprintf "master-%d" i
  | S i -> Printf.sprintf "slave-%d" i
  | C i -> Printf.sprintf "client-%d" i
  | A -> "auditor"

let link t a b =
  match Hashtbl.find_opt t.links (a, b) with
  | Some l -> l
  | None ->
    let latency =
      if t.latency_factor = 1.0 then latency_for t a b
      else Latency.scale (latency_for t a b) t.latency_factor
    in
    let loss = match t.loss_override with Some l -> l | None -> t.net.loss in
    let l =
      Link.create t.sim ~rng:(Prng.split t.rng) ~latency ~loss
        ~name:(Printf.sprintf "%s->%s" (endpoint_name a) (endpoint_name b))
        ()
    in
    if Hashtbl.mem t.partitioned a || Hashtbl.mem t.partitioned b then Link.set_up l false;
    if t.duplicate_override > 0.0 then Link.set_duplicate l t.duplicate_override;
    (match t.reorder_override with
    | Some (burst, window) -> Link.set_reorder l ~burst ~window
    | None -> ());
    Hashtbl.add t.links (a, b) l;
    l

(* Every simulated hop is also a "network" span (recorded at delivery,
   when the duration is known); dropped messages leave no span. *)
let send t a b thunk =
  let sent = Sim.now t.sim in
  Link.send (link t a b) (fun () ->
      Span.record t.spans
        ~source:(Printf.sprintf "net:%s->%s" (endpoint_name a) (endpoint_name b))
        ~start:sent
        ~duration:(Sim.now t.sim -. sent)
        "network";
      thunk ())

(* -- ground truth ---------------------------------------------------- *)

let oracle_absorb t entry =
  if t.track_ground_truth then begin
    t.oracle_buffer <-
      List.sort
        (fun (a : Oplog.entry) b -> Int.compare a.version b.version)
        (entry :: t.oracle_buffer);
    let rec drain () =
      match t.oracle_buffer with
      | e :: rest when e.Oplog.version = Store.version t.oracle + 1 ->
        Store.apply_entry t.oracle e;
        Hashtbl.replace t.oracle_snapshots (Store.version t.oracle) (Store.snapshot t.oracle);
        t.oracle_buffer <- rest;
        drain ()
      | e :: rest when e.Oplog.version <= Store.version t.oracle ->
        t.oracle_buffer <- rest;
        drain ()
      | _ -> ()
    in
    drain ()
  end

let reexec_digest t ~version query =
  if not t.track_ground_truth then None
  else begin
    match Hashtbl.find_opt t.oracle_snapshots version with
    | None -> None
    | Some snap ->
      let scratch = Store.create () in
      Store.restore scratch snap;
      (match Query_eval.execute scratch query with
      | Error _ -> None
      | Ok { result; _ } -> Some (Canonical.result_digest result))
  end

let check_result t ~version query ~digest =
  match reexec_digest t ~version query with
  | None -> None
  | Some honest -> Some (String.equal honest digest)

let on_pledge_submitted t f = t.pledge_taps <- t.pledge_taps @ [ f ]

(* -- Byzantine payload corruption ------------------------------------- *)

(* Flip one random bit of the encoded pledge in a read reply.  Either
   the frame no longer parses (dropped, counted) or it parses into a
   pledge whose signature can no longer verify — asserted here, since a
   single-bit flip that still verifies would be a signature forgery.
   The client must then reject the reply, exactly like any other
   tampering. *)
let maybe_bitflip t (r : Slave.read_reply option) =
  match r with
  | Some { Slave.result; pledge } when t.bitflip > 0.0 && Prng.bernoulli t.rng t.bitflip
    -> begin
    let bytes = Bytes.of_string (Wire.encode_pledge pledge) in
    let bit = Prng.int t.rng (8 * Bytes.length bytes) in
    let idx = bit / 8 in
    Bytes.set bytes idx
      (Char.chr (Char.code (Bytes.get bytes idx) lxor (1 lsl (bit mod 8))));
    Stats.incr t.stats "system.bitflips_injected";
    match Wire.decode_pledge (Bytes.to_string bytes) with
    | Error _ ->
      Stats.incr t.stats "system.bitflips_unparsable";
      None
    | Ok mutated ->
      let slave_public = Slave.public t.slaves.(pledge.Pledge.slave_id) in
      assert (
        (not (Pledge.verify_signature ~slave_public mutated))
        || String.equal (Wire.encode_pledge mutated) (Wire.encode_pledge pledge));
      Stats.incr t.stats "system.bitflips_delivered";
      Some { Slave.result; pledge = mutated }
  end
  | r -> r

(* -- exclusion & reassignment ----------------------------------------- *)

let alive_masters t =
  Array.to_list t.masters |> List.filter Master.is_alive |> List.map Master.id

let rec reassign_client t ~client_id ~excluding =
  (* The setup phase of §2: pick a (live) master, have it hand us a
     slave.  [excluding] lists slaves the client refuses (just
     excluded, or quarantined by its circuit breakers); crashed slaves
     are never handed out. *)
  let excluding = Hashtbl.fold (fun id () acc -> id :: acc) t.crashed_slaves excluding in
  match alive_masters t with
  | [] -> log t "system" "client %d cannot connect: no live master" client_id
  | alive ->
    let m_id = List.nth alive (Prng.int t.rng (List.length alive)) in
    let m = t.masters.(m_id) in
    (match Master.assign_slave m ~rng:t.rng ~excluding with
    | Some s ->
      t.client_master.(client_id) <- m_id;
      t.client_slave.(client_id) <- Slave.id s;
      Stats.incr t.stats "system.client_setups"
    | None ->
      (* This master has no usable slave; try adopting from any master
         with spares, otherwise leave the client pointed at the master
         with no slave (reads will retry). *)
      let donor =
        Array.to_list t.masters
        |> List.find_opt (fun other ->
               Master.is_alive other
               && Master.id other <> m_id
               && Master.assign_slave other ~rng:t.rng ~excluding <> None)
      in
      (match donor with
      | Some other ->
        t.client_master.(client_id) <- Master.id other;
        (match Master.assign_slave other ~rng:t.rng ~excluding with
        | Some s ->
          t.client_slave.(client_id) <- Slave.id s;
          Stats.incr t.stats "system.client_setups"
        | None -> ())
      | None -> log t "system" "client %d: no usable slave anywhere" client_id))

and exclude_slave t ~slave_id ~discovery =
  if not (Corrective.is_currently_excluded t.corrective ~slave_id) then begin
    let s = t.slaves.(slave_id) in
    Slave.exclude s;
    let m = t.masters.(t.slave_master.(slave_id)) in
    Master.remove_slave m ~slave_id;
    (* Contact every client connected to the malicious slave and re-home
       it (§3.5). *)
    let reassigned = ref 0 in
    Array.iteri
      (fun client_id assigned ->
        if assigned = slave_id then begin
          incr reassigned;
          reassign_client t ~client_id ~excluding:[ slave_id ]
        end)
      t.client_slave;
    (* §3.5 rollback: every client checks which recently accepted reads
       came from the convict. *)
    Array.iter (fun c -> ignore (Client.on_slave_excluded c ~slave_id)) t.clients;
    (* The exclusion is public: adaptive attackers read it as audit
       pressure (honest slaves ignore the signal). *)
    Array.iter Slave.note_peer_excluded t.slaves;
    Stats.incr t.stats "system.slaves_excluded";
    Stats.add t.stats "system.clients_reassigned" !reassigned;
    Trace.emit t.trace ~time:(Sim.now t.sim) ~source:"system"
      (Event.Slave_excluded
         {
           slave = slave_id;
           immediate =
             (match discovery with Corrective.Immediate -> true | Delayed -> false);
         });
    log t "system" "slave %d excluded (%s); %d clients re-homed" slave_id
      (match discovery with Corrective.Immediate -> "immediate" | Delayed -> "delayed")
      !reassigned;
    Corrective.record t.corrective
      {
        Corrective.time = Sim.now t.sim;
        slave_id;
        discovery;
        clients_reassigned = !reassigned;
      }
  end

(* -- construction ------------------------------------------------------ *)

let create ?(n_masters = 3) ?(slaves_per_master = 4) ?(n_clients = 10) ?(n_auditors = 1)
    ?(config = Config.default) ?(net = default_net) ?(seed = 1L) ?(trace_capacity = 4096)
    ?span_capacity ?(track_ground_truth = true)
    ?(client_max_latency = fun (_ : int) -> None) () =
  let config = Config.validate_exn config in
  if n_masters < 1 then invalid_arg "System.create: need at least one master";
  if slaves_per_master < 1 then invalid_arg "System.create: need at least one slave per master";
  if n_clients < 1 then invalid_arg "System.create: need at least one client";
  if n_auditors < 1 then invalid_arg "System.create: need at least one auditor";
  let sim = Sim.create () in
  let rng = Prng.create ~seed in
  let stats = Stats.create () in
  let trace = Trace.create ~capacity:trace_capacity () in
  let spans = Span.create ?capacity:span_capacity ~stats () in
  let content = Content_key.create config.Config.scheme (Prng.split rng) in
  let directory = Directory.create () in
  let n_slaves = n_masters * slaves_per_master in
  let master_ids = List.init n_masters Fun.id in
  (* The broadcast group is created first; master delivery hooks are
     installed after the masters exist. *)
  let masters_ref = ref [||] in
  let group =
    Total_order.create sim ~rng:(Prng.split rng) ~members:master_ids
      ~latency:net.master_master ~loss:net.loss ~trace
      ~deliver:(fun ~member ~seq:_ payload ->
        let masters = !masters_ref in
        if Array.length masters > 0 then begin
          match payload with
          | Write { origin; write_id; op } ->
            Master.on_delivered_write masters.(member) ~origin ~write_id ~op
          | Slave_list { master; slaves } ->
            Master.record_peer_slaves masters.(member) ~master ~slaves
        end)
      ()
  in
  let masters =
    Array.init n_masters (fun id ->
        Master.create sim ~rng:(Prng.split rng) ~id ~config ~content
          ~order_write:(fun ~origin ~write_id op ->
            Total_order.broadcast group ~from:origin (Write { origin; write_id; op }))
          ~stats ~trace ~spans ())
  in
  masters_ref := masters;
  Array.iter (fun m -> Directory.publish directory (Master.certificate m)) masters;
  let slaves =
    Array.init n_slaves (fun id ->
        Slave.create sim ~rng:(Prng.split rng) ~id ~config ~master_id:(id mod n_masters)
          ~stats ~trace ~spans ())
  in
  let slave_master = Array.init n_slaves (fun id -> id mod n_masters) in
  let t_ref = ref None in
  let the = fun () -> match !t_ref with Some t -> t | None -> assert false in
  let auditors =
    Array.init n_auditors (fun _ ->
        Auditor.create sim ~config ~stats ~rng:(Prng.split rng)
          ~slave_public:(fun id ->
            if id >= 0 && id < n_slaves then Some (Slave.public slaves.(id)) else None)
          ~report:(fun pledge ->
            exclude_slave (the ()) ~slave_id:pledge.Pledge.slave_id
              ~discovery:Corrective.Delayed)
          ~trace ~spans ())
  in
  let t =
    {
      sim;
      config;
      net;
      rng;
      stats;
      trace;
      spans;
      corrective = Corrective.create ();
      content;
      directory;
      masters;
      slaves;
      clients = [||];
      auditors;
      group;
      links = Hashtbl.create 64;
      partitioned = Hashtbl.create 8;
      crashed_slaves = Hashtbl.create 8;
      loss_override = None;
      latency_factor = 1.0;
      duplicate_override = 0.0;
      reorder_override = None;
      bitflip = 0.0;
      client_master = Array.make n_clients 0;
      client_slave = Array.make n_clients 0;
      slave_master;
      track_ground_truth;
      oracle = Store.create ();
      oracle_snapshots = Hashtbl.create 64;
      oracle_buffer = [];
      pledge_taps = [];
    }
  in
  t_ref := Some t;
  (* Version 0 = empty content. *)
  Hashtbl.replace t.oracle_snapshots 0 (Store.snapshot t.oracle);
  (* Hand each master its slave set; master->slave delivery goes over
     the mesh links. *)
  Array.iteri
    (fun s_id s ->
      let m = masters.(slave_master.(s_id)) in
      Master.add_slave m s ~send:(fun sl thunk -> send t (M (Master.id m)) (S (Slave.id sl)) thunk))
    slaves;
  (* Feed the auditors and the oracle from master commits (deduped by
     version inside each auditor / oracle_absorb). *)
  Array.iter
    (fun m ->
      Master.on_write_committed m (fun entry ~commit_time ->
          oracle_absorb t entry;
          Array.iter
            (fun auditor ->
              send t (M (Master.id m)) A (fun () ->
                  Auditor.on_committed_write auditor ~entry ~commit_time))
            t.auditors))
    masters;
  Array.iter Master.start_keepalive masters;
  (* §3: each master periodically broadcasts its slave list to the
     master set through the same total-order channel. *)
  Array.iter
    (fun m ->
      ignore
        (Secrep_sim.Process.periodic sim
           ~period:(5.0 *. config.Config.keepalive_period)
           ~jitter:(config.Config.keepalive_period /. 2.0)
           ~rng:(Prng.split rng)
           (fun () ->
             let id = Master.id m in
             if Master.is_alive m && Total_order.is_alive group id then
               Total_order.broadcast group ~from:id
                 (Slave_list { master = id; slaves = Master.slave_ids m }))))
    masters;
  (* Clients + setup phase. *)
  let make_client id =
    let env =
      {
        Client.now = (fun () -> Sim.now t.sim);
        schedule = (fun ~delay f -> ignore (Sim.schedule t.sim ~delay f));
        slave_id = (fun () -> t.client_slave.(id));
        slave_public = (fun () -> Slave.public t.slaves.(t.client_slave.(id)));
        master_public = (fun () -> Master.public t.masters.(t.client_master.(id)));
        send_read =
          (fun ~request ~query ~reply ->
            let s_id = t.client_slave.(id) in
            let s = t.slaves.(s_id) in
            Stats.add t.stats "system.query_bytes"
              (String.length (Secrep_store.Codec.encode_query query));
            send t (C id) (S s_id) (fun () ->
                Slave.handle_read s ~client:id ~request ~query ~reply:(fun r ->
                    (match r with
                    | Some { Slave.result; pledge } ->
                      Stats.add t.stats "system.read_reply_bytes"
                        (String.length (Secrep_store.Codec.encode_result result)
                        + Wire.pledge_size pledge)
                    | None -> ());
                    let r = maybe_bitflip t r in
                    send t (S s_id) (C id) (fun () -> reply r))));
        send_read_to =
          (fun ~slave_id ~request ~query ~reply ->
            let s = t.slaves.(slave_id) in
            send t (C id) (S slave_id) (fun () ->
                Slave.handle_read s ~client:id ~request ~query ~reply:(fun r ->
                    let r = maybe_bitflip t r in
                    send t (S slave_id) (C id) (fun () -> reply r))));
        quorum_candidates =
          (fun () ->
            (* Assigned slave first, then the other live slaves of the
               same master, then any other live slave. *)
            let mine = t.client_slave.(id) in
            let my_master = t.client_master.(id) in
            let live =
              Array.to_list t.slaves
              |> List.filter (fun s ->
                     (not (Slave.is_excluded s))
                     && (not (Hashtbl.mem t.crashed_slaves (Slave.id s)))
                     && Slave.is_available s ~now:(Sim.now t.sim))
              |> List.map Slave.id
            in
            let same_master =
              List.filter (fun s -> s <> mine && t.slave_master.(s) = my_master) live
            in
            let others =
              List.filter (fun s -> s <> mine && t.slave_master.(s) <> my_master) live
            in
            if List.mem mine live then (mine :: same_master) @ others
            else same_master @ others);
        public_of_slave =
          (fun s_id ->
            if s_id >= 0 && s_id < Array.length t.slaves then Some (Slave.public t.slaves.(s_id))
            else None);
        send_double_check =
          (fun ~query ~reply ->
            let m_id = t.client_master.(id) in
            let m = t.masters.(m_id) in
            send t (C id) (M m_id) (fun () ->
                Master.handle_double_check m ~client:id ~query ~reply:(fun r ->
                    send t (M m_id) (C id) (fun () -> reply r))));
        send_sensitive =
          (fun ~query ~reply ->
            let m_id = t.client_master.(id) in
            let m = t.masters.(m_id) in
            send t (C id) (M m_id) (fun () ->
                Master.handle_sensitive_read m ~client:id ~query ~reply:(fun r ->
                    send t (M m_id) (C id) (fun () -> reply r))));
        send_write =
          (fun ~op ~reply ->
            let m_id = t.client_master.(id) in
            let m = t.masters.(m_id) in
            send t (C id) (M m_id) (fun () ->
                Master.handle_write m ~client:id ~op ~reply:(fun r ->
                    send t (M m_id) (C id) (fun () -> reply r))));
        forward_pledge =
          (fun pledge ->
            if t.config.Config.audit_enabled then begin
              (* With several auditors (§3.4: "add extra auditors"),
                 pledges shard deterministically by query digest. *)
              let shard =
                if Array.length t.auditors = 1 then 0
                else begin
                  let digest = Canonical.query_digest pledge.Pledge.query in
                  Char.code digest.[0] mod Array.length t.auditors
                end
              in
              let auditor = t.auditors.(shard) in
              Stats.add t.stats "system.pledge_bytes" (Wire.pledge_size pledge);
              send t (C id) A (fun () ->
                  List.iter (fun tap -> tap pledge) t.pledge_taps;
                  Auditor.submit_pledge auditor pledge)
            end);
        report_proof =
          (fun pledge ->
            let s_id = pledge.Pledge.slave_id in
            (* A double-check disagreement is already strong suspicion,
               even when the master later rules it inconclusive. *)
            Array.iter
              (fun a -> Auditor.note_suspicion a ~slave:s_id ~amount:1.5)
              t.auditors;
            let m_id = t.slave_master.(s_id) in
            let m = t.masters.(m_id) in
            send t (C id) (M m_id) (fun () ->
                if Master.is_alive m then begin
                  match
                    Master.handle_proof m ~proof:pledge
                      ~slave_public:(Slave.public t.slaves.(s_id))
                  with
                  | Master.Slave_guilty ->
                    exclude_slave t ~slave_id:s_id ~discovery:Corrective.Immediate
                  | Master.Pledge_invalid _ -> Stats.incr t.stats "system.invalid_proofs"
                  | Master.Inconclusive _ -> Stats.incr t.stats "system.inconclusive_proofs"
                end));
        note_nonce_reject =
          (fun ~slave ->
            (* Replay suspicion, not proof: bump the auditors' score so
               adaptive sampling leans on the slave. *)
            Stats.incr t.stats "system.nonce_rejects";
            Array.iter
              (fun a -> Auditor.note_suspicion a ~slave ~amount:1.0)
              t.auditors);
        note_stale_reject =
          (fun ~slave ->
            (* A stale pledge at read time is the client-side face of a
               replayed or frozen reply — a pledge the auditor will
               never see, because the client refuses to accept or
               forward it.  Evidence, not proof: feed it to the
               adaptive sampler only, so probation (never exclusion)
               acts, and the seed event stream is untouched with the
               flag off. *)
            if t.config.Config.audit_adaptive then begin
              Stats.incr t.stats "system.stale_reject_reports";
              Array.iter
                (fun a -> Auditor.note_suspicion a ~slave ~amount:0.5)
                t.auditors
            end);
        reconnect =
          (fun ~avoid ->
            let excluding = avoid @ Corrective.currently_excluded t.corrective in
            reassign_client t ~client_id:id ~excluding);
      }
    in
    Client.create ~id ~rng:(Prng.split rng) ~config ~env ~stats ~trace ~spans
      ?max_latency_override:(client_max_latency id) ()
  in
  t.clients <- Array.init n_clients make_client;
  (* Simulator self-profiling: sampled every virtual second so a
     metrics dump shows queue depth, dispatch rate and aggregate CPU
     busy time without any external profiler. *)
  let last_executed = ref 0 in
  ignore
    (Secrep_sim.Process.periodic sim ~period:1.0 (fun () ->
         Stats.set_gauge stats "sim.pending_events" (float_of_int (Sim.pending sim));
         let executed = Sim.executed_events sim in
         Stats.add stats "sim.events_dispatched" (executed - !last_executed);
         last_executed := executed;
         let busy acc w = acc +. Work_queue.busy_seconds w in
         let total = Array.fold_left (fun acc m -> busy acc (Master.work m)) 0.0 masters in
         let total = Array.fold_left (fun acc s -> busy acc (Slave.work s)) total slaves in
         let total =
           Array.fold_left (fun acc a -> busy acc (Auditor.work a)) total t.auditors
         in
         Stats.set_gauge stats "sim.process_busy_seconds" total));
  (* Setup phase: verify certificates, then connect (§2). *)
  let certs = Directory.lookup directory ~content_id:(content_id t) in
  List.iter
    (fun cert ->
      if not (Certificate.verify ~content_public:(Content_key.public content) cert) then
        failwith "System.create: invalid master certificate in directory")
    certs;
  for id = 0 to n_clients - 1 do
    reassign_client t ~client_id:id ~excluding:[]
  done;
  t

(* -- running & operations ---------------------------------------------- *)

let run_until t time = Sim.run ~until:time t.sim
let run_for t dt = Sim.run ~until:(Sim.now t.sim +. dt) t.sim

let load_content t pairs =
  let base = Store.version (Master.store t.masters.(0)) in
  let entries =
    List.mapi
      (fun i (key, doc) -> { Oplog.version = base + 1 + i; op = Oplog.Put { key; doc } })
      pairs
  in
  Array.iter (fun m -> Master.bootstrap m entries) t.masters;
  let target = base + List.length pairs in
  Array.iter
    (fun s ->
      let m_id = t.slave_master.(Slave.id s) in
      let keepalive =
        Keepalive.make
          ~master_key:(Master.keypair t.masters.(m_id))
          ~content_id:(content_id t) ~master_id:m_id ~version:target ~now:(Sim.now t.sim)
      in
      Slave.receive_update s ~entries ~keepalive)
    t.slaves;
  (* Back-dated commit times let the auditor advance through the
     bootstrap versions immediately. *)
  let old =
    Sim.now t.sim -. t.config.Config.max_latency -. t.config.Config.audit_lag_slack -. 1.0
  in
  List.iter
    (fun entry ->
      Array.iter (fun a -> Auditor.on_committed_write a ~entry ~commit_time:old) t.auditors;
      oracle_absorb t entry)
    entries

let read t ~client:client_id ?level ?mode query ~on_done =
  let c = t.clients.(client_id) in
  Client.read c ?level ?mode query ~on_done:(fun report ->
      (match report.Client.outcome with
      | `Accepted result ->
        Histogram.add (Stats.histogram t.stats "system.read_latency") report.Client.latency;
        let digest = Canonical.result_digest result in
        (match check_result t ~version:report.Client.version query ~digest with
        | Some true -> Stats.incr t.stats "system.accepted_correct"
        | Some false -> Stats.incr t.stats "system.accepted_wrong"
        | None -> ())
      | `Served_by_master _ ->
        Histogram.add (Stats.histogram t.stats "system.read_latency") report.Client.latency;
        Stats.incr t.stats "system.accepted_correct"
      | `Gave_up -> ());
      on_done report)

let write t ~client:client_id op ~on_done =
  Client.write t.clients.(client_id) op ~on_done:(fun ack ->
      (match ack with
      | Master.Committed _ -> Stats.incr t.stats "system.writes_committed_acked"
      | Master.Denied _ -> Stats.incr t.stats "system.writes_denied");
      on_done ack)

let set_slave_behavior t ~slave behavior =
  Slave.set_behavior t.slaves.(slave) behavior;
  log t "system" "slave %d behavior: %s" slave (Fault.describe behavior)

let readmit_slave t ~slave_id =
  if slave_id < 0 || slave_id >= Array.length t.slaves then Error "unknown slave"
  else if not (Corrective.is_currently_excluded t.corrective ~slave_id) then
    Error "slave is not currently excluded"
  else begin
    match alive_masters t with
    | [] -> Error "no live master to re-home the slave"
    | m_id :: _ ->
      let m = t.masters.(m_id) in
      let s = t.slaves.(slave_id) in
      (* The owner recovers the host to a safe state: full checkpoint
         from the master plus a fresh keep-alive. *)
      let checkpoint = Store.to_bytes (Master.store m) in
      let keepalive =
        Keepalive.make ~master_key:(Master.keypair m) ~content_id:(content_id t)
          ~master_id:m_id
          ~version:(Store.version (Master.store m))
          ~now:(Sim.now t.sim)
      in
      (match Slave.reinstate s ~checkpoint ~keepalive with
      | Error _ as e -> e
      | Ok () ->
        Corrective.readmit t.corrective ~slave_id ~time:(Sim.now t.sim);
        t.slave_master.(slave_id) <- m_id;
        Master.add_slave m s ~send:(fun sl thunk ->
            send t (M m_id) (S (Slave.id sl)) thunk);
        Stats.incr t.stats "system.slaves_readmitted";
        log t "system" "slave %d recovered and readmitted under master %d" slave_id m_id;
        Ok ())
  end

let crash_master t m_id =
  let m = t.masters.(m_id) in
  if Master.is_alive m then begin
    Master.crash m;
    Total_order.crash t.group m_id;
    Trace.emit t.trace ~time:(Sim.now t.sim) ~source:"system"
      (Event.Node_crashed { node = node_name (M m_id) });
    (* Remaining masters divide the dead master's slave set (§3). *)
    let heirs = alive_masters t in
    (match heirs with
    | [] -> log t "system" "last master crashed; system is down"
    | heir0 :: _ ->
      (* Survivors know the dead master's slave set from its periodic
         broadcast (§3); fall back to direct inspection only if the
         crash happened before the first announcement. *)
      let gossiped = Master.peer_slaves t.masters.(heir0) ~of_:m_id in
      let orphan_ids = if gossiped <> [] then gossiped else Master.slave_ids m in
      List.iteri
        (fun i s_id ->
          let heir_id = List.nth heirs (i mod List.length heirs) in
          let heir = t.masters.(heir_id) in
          t.slave_master.(s_id) <- heir_id;
          Master.add_slave heir t.slaves.(s_id) ~send:(fun sl thunk ->
              send t (M heir_id) (S (Slave.id sl)) thunk))
        orphan_ids;
      (* Clients of the dead master redo the setup phase (§3). *)
      Array.iteri
        (fun client_id m_of_c ->
          if m_of_c = m_id then
            reassign_client t ~client_id
              ~excluding:(Corrective.currently_excluded t.corrective))
        t.client_master)
  end

(* -- chaos hooks: partitions, benign crash-recover, net degradation --- *)

(* A link is up iff neither endpoint is partitioned; recompute on every
   change so overlapping cuts compose (a link between two partitioned
   endpoints stays down until *both* heal).  Returns whether the
   endpoint's state actually changed. *)
let set_endpoint_up t ep ~up =
  let was_down = Hashtbl.mem t.partitioned ep in
  if up then Hashtbl.remove t.partitioned ep else Hashtbl.replace t.partitioned ep ();
  Hashtbl.iter
    (fun (a, b) l ->
      if a = ep || b = ep then
        Link.set_up l
          (not (Hashtbl.mem t.partitioned a || Hashtbl.mem t.partitioned b)))
    t.links;
  (* Masters also sit on the total-order mesh: cut those links too so a
     partitioned master neither orders writes nor hears heartbeats. *)
  (match ep with
  | M m_id ->
    Array.iteri
      (fun other _ ->
        if other <> m_id then begin
          let pair_up =
            not
              (Hashtbl.mem t.partitioned (M m_id) || Hashtbl.mem t.partitioned (M other))
          in
          (try Link.set_up (Total_order.link_between t.group m_id other) pair_up
           with Not_found -> ());
          (try Link.set_up (Total_order.link_between t.group other m_id) pair_up
           with Not_found -> ())
        end)
      t.masters
  | S _ | C _ | A -> ());
  let changed = was_down = up in
  if changed then begin
    Trace.emit t.trace ~time:(Sim.now t.sim) ~source:"system"
      (Event.Partition { target = node_name ep; up });
    log t "system" "%s network %s" (node_name ep) (if up then "healed" else "cut")
  end;
  changed

let set_master_connectivity t ~master_id ~up =
  ignore (set_endpoint_up t (M master_id) ~up)

let set_client_connectivity t ~client_id ~up = ignore (set_endpoint_up t (C client_id) ~up)
let set_auditor_connectivity t ~up = ignore (set_endpoint_up t A ~up)
let is_crashed t ~slave_id = Hashtbl.mem t.crashed_slaves slave_id

let set_slave_connectivity t ~slave_id ~up =
  let changed = set_endpoint_up t (S slave_id) ~up in
  (* A healed slave is behind; the next keep-alive triggers its resync.
     Recovery convergence is asserted from this event, so it is only
     emitted for slaves that are actually back in service. *)
  if
    changed && up
    && (not (is_crashed t ~slave_id))
    && not (Slave.is_excluded t.slaves.(slave_id))
  then
    Trace.emit t.trace ~time:(Sim.now t.sim) ~source:"system"
      (Event.Node_recovered
         { node = node_name (S slave_id); version = Slave.version t.slaves.(slave_id) })

(* Benign fail-stop crash: the host vanishes from the network but its
   owner is not accused of anything — no Corrective entry, unlike
   [exclude_slave].  Recovery wipes the host and reinstates it from a
   master checkpoint (§3.5's recovery path, without the exclusion). *)
let crash_slave t ~slave_id =
  if not (Hashtbl.mem t.crashed_slaves slave_id) then begin
    Hashtbl.replace t.crashed_slaves slave_id ();
    ignore (set_endpoint_up t (S slave_id) ~up:false);
    Stats.incr t.stats "system.slave_crashes";
    Trace.emit t.trace ~time:(Sim.now t.sim) ~source:"system"
      (Event.Node_crashed { node = node_name (S slave_id) });
    log t "system" "slave %d crashed (benign)" slave_id
  end

let recover_slave t ~slave_id =
  if slave_id < 0 || slave_id >= Array.length t.slaves then Error "unknown slave"
  else if Corrective.is_currently_excluded t.corrective ~slave_id then
    Error "slave is excluded; use readmit_slave"
  else if not (Hashtbl.mem t.crashed_slaves slave_id) then Error "slave is not crashed"
  else begin
    match alive_masters t with
    | [] -> Error "no live master to restore from"
    | alive ->
      let m_id =
        let cur = t.slave_master.(slave_id) in
        if Master.is_alive t.masters.(cur) then cur else List.hd alive
      in
      let m = t.masters.(m_id) in
      let s = t.slaves.(slave_id) in
      let checkpoint = Store.to_bytes (Master.store m) in
      let keepalive =
        Keepalive.make ~master_key:(Master.keypair m) ~content_id:(content_id t)
          ~master_id:m_id
          ~version:(Store.version (Master.store m))
          ~now:(Sim.now t.sim)
      in
      (match Slave.reinstate s ~checkpoint ~keepalive with
      | Error _ as e -> e
      | Ok () ->
        Hashtbl.remove t.crashed_slaves slave_id;
        ignore (set_endpoint_up t (S slave_id) ~up:true);
        t.slave_master.(slave_id) <- m_id;
        Master.add_slave m s ~send:(fun sl thunk -> send t (M m_id) (S (Slave.id sl)) thunk);
        Stats.incr t.stats "system.slave_recoveries";
        Trace.emit t.trace ~time:(Sim.now t.sim) ~source:"system"
          (Event.Node_recovered { node = node_name (S slave_id); version = Slave.version s });
        log t "system" "slave %d recovered from crash under master %d" slave_id m_id;
        Ok ())
  end

let set_loss t loss =
  (match loss with
  | Some l when l < 0.0 || l >= 1.0 -> invalid_arg "System.set_loss: loss must be in [0, 1)"
  | Some _ | None -> ());
  t.loss_override <- loss;
  let effective = match loss with Some l -> l | None -> t.net.loss in
  Hashtbl.iter (fun _ l -> Link.set_loss l effective) t.links;
  Trace.emit t.trace ~time:(Sim.now t.sim) ~source:"system"
    (Event.Net_degraded
       {
         loss = (match loss with Some l -> l | None -> 0.0);
         latency_factor = t.latency_factor;
       })

let set_latency_factor t factor =
  if factor <= 0.0 then invalid_arg "System.set_latency_factor: factor must be positive";
  t.latency_factor <- factor;
  Hashtbl.iter
    (fun (a, b) l -> Link.set_latency l (Latency.scale (latency_for t a b) factor))
    t.links;
  Trace.emit t.trace ~time:(Sim.now t.sim) ~source:"system"
    (Event.Net_degraded
       {
         loss = (match t.loss_override with Some l -> l | None -> 0.0);
         latency_factor = factor;
       })

let latency_factor t = t.latency_factor

(* -- Byzantine delivery faults ---------------------------------------- *)

let set_duplicate t p =
  if p < 0.0 || p >= 1.0 then invalid_arg "System.set_duplicate: must be in [0, 1)";
  t.duplicate_override <- p;
  Hashtbl.iter (fun _ l -> Link.set_duplicate l p) t.links;
  log t "system" "byzantine: duplicate probability %.3f" p

let duplicate t = t.duplicate_override

let set_reorder t ~burst ~window =
  (match burst with
  | 0 -> ()
  | b when b >= 2 ->
    if window <= 0.0 then invalid_arg "System.set_reorder: window must be positive"
  | _ -> invalid_arg "System.set_reorder: burst must be 0 (off) or >= 2");
  t.reorder_override <- (if burst = 0 then None else Some (burst, window));
  Hashtbl.iter (fun _ l -> Link.set_reorder l ~burst ~window) t.links;
  log t "system" "byzantine: reorder burst %d (window %.3fs)" burst window

let reorder t = t.reorder_override

let set_bitflip t p =
  if p < 0.0 || p >= 1.0 then invalid_arg "System.set_bitflip: must be in [0, 1)";
  t.bitflip <- p;
  log t "system" "byzantine: pledge bit-flip probability %.3f" p

let bitflip t = t.bitflip
