(** Master servers (§2): trusted hosts run by the content owner.  They
    order writes through the total-order broadcast, lazily push
    committed state (plus signed keep-alives) to their slave set,
    answer clients' double-checks and sensitive reads, and exclude
    slaves when handed an incriminating pledge. *)

type t

type write_ack =
  | Committed of { version : int }
  | Denied of string  (** access-control rejection *)

type double_check_reply =
  | Checked of { digest : string; version : int }
  | Throttled  (** greedy-client quota enforcement (§3.3) *)

type proof_verdict =
  | Slave_guilty
  | Pledge_invalid of string
  | Inconclusive of string
      (** version mismatch: only the (lagging) auditor can re-execute
          at that version *)

val create :
  Secrep_sim.Sim.t ->
  rng:Secrep_crypto.Prng.t ->
  id:int ->
  config:Config.t ->
  content:Content_key.t ->
  order_write:(origin:int -> write_id:int -> Secrep_store.Oplog.op -> unit) ->
  stats:Secrep_sim.Stats.t ->
  ?trace:Secrep_sim.Trace.t ->
  ?spans:Secrep_sim.Span.t ->
  unit ->
  t
(** [order_write] hands the op to the total-order broadcast; the
    system layer routes delivered slots back via
    {!on_delivered_write}. *)

val id : t -> int
val public : t -> Secrep_crypto.Sig_scheme.public
val keypair : t -> Secrep_crypto.Sig_scheme.keypair
val certificate : t -> Certificate.t
val store : t -> Secrep_store.Store.t
val version : t -> int
val work : t -> Secrep_sim.Work_queue.t

val set_acl : t -> allowed_writers:int list option -> unit
(** [None] (default) lets every client write. *)

val bootstrap : t -> Secrep_store.Oplog.entry list -> unit
(** Load initial content directly into the store and op log, bypassing
    the write path.  Entries must continue the current version
    sequence. *)

(* -- slave-set management ---------------------------------------- *)

val add_slave : t -> Slave.t -> send:(Slave.t -> (unit -> unit) -> unit) -> unit
(** [send] delivers a thunk over the master->slave link.  The slave's
    resync callback is installed here. *)

val remove_slave : t -> slave_id:int -> unit
val slave_ids : t -> int list
val assign_slave : t -> rng:Secrep_crypto.Prng.t -> excluding:int list -> Slave.t option
(** Pick a live slave for a (re)connecting client. *)

val adopt_slaves : t -> from:t -> unit
(** Master-crash recovery: absorb another master's slave set (the
    periodic slave-list broadcast of §3 makes this possible). *)

val record_peer_slaves : t -> master:int -> slaves:int list -> unit
(** Remember a peer's broadcast slave list (§3: "masters also
    periodically broadcast their slave list to the master set"). *)

val peer_slaves : t -> of_:int -> int list
(** The most recent slave list heard from peer [of_]; empty when none
    was ever received. *)

(* -- client-facing operations ------------------------------------ *)

val handle_write :
  t -> client:int -> op:Secrep_store.Oplog.op -> reply:(write_ack -> unit) -> unit

val handle_double_check :
  t -> client:int -> query:Secrep_store.Query.t -> reply:(double_check_reply -> unit) -> unit

val handle_sensitive_read :
  t ->
  client:int ->
  query:Secrep_store.Query.t ->
  reply:((Secrep_store.Query_result.t * int) option -> unit) ->
  unit
(** §4: execute on the trusted master; [None] only for invalid
    queries. *)

val handle_proof :
  t -> proof:Pledge.t -> slave_public:Secrep_crypto.Sig_scheme.public -> proof_verdict
(** Immediate-discovery path (§3.5): verify the pledge signature and
    re-execute at the current version.  [Slave_guilty] means the
    caller should trigger exclusion. *)

(* -- commit pipeline ---------------------------------------------- *)

val on_delivered_write :
  t -> origin:int -> write_id:int -> op:Secrep_store.Oplog.op -> unit
(** Called (in identical order on every master) when the broadcast
    delivers a write.  Application is deferred so consecutive commits
    are at least [max_latency] apart (the §3.1 race-condition rule);
    after applying, the master updates its slaves and acks the client
    when it was the origin. *)

val start_keepalive : t -> unit
(** Start the periodic signed keep-alive broadcast to the slave set
    (§3.1). *)

val crash : t -> unit
val is_alive : t -> bool

val on_write_committed : t -> (Secrep_store.Oplog.entry -> commit_time:float -> unit) -> unit
(** Observer hook the system uses to feed the auditor. *)

val writes_committed : t -> int
val last_commit_time : t -> float
