(** Offline audit drivers for differential testing.

    A recorded pledge stream plus a re-execution oracle fully determine
    the auditor's verdicts; these drivers compute them two independent
    ways.  [run_naive] is the reference semantics (every pledge fully
    signature-checked and re-executed); [run_dedup] is the production
    fast path (memoized batch-root verification + dedup index).  The
    [differential-audit] fuzz invariant asserts they emit identical
    verdict lists on any scenario. *)

type verdict = Ok_pledge | Caught | Bad_signature

val equal_verdict : verdict -> verdict -> bool
val pp_verdict : Format.formatter -> verdict -> unit

val run_naive :
  slave_public:(int -> Secrep_crypto.Sig_scheme.public option) ->
  reexec:(version:int -> Secrep_store.Query.t -> string option) ->
  Pledge.t list ->
  verdict list
(** One verdict per pledge, in order.  [reexec] returns the honest
    canonical result digest at a version ([None] = unanswerable, which
    convicts nobody and yields [Bad_signature], matching the live
    auditor's treatment of unexecutable queries). *)

type dedup_stats = { reexecs : int; dedup_hits : int; root_verifications : int }

val run_dedup :
  slave_public:(int -> Secrep_crypto.Sig_scheme.public option) ->
  reexec:(version:int -> Secrep_store.Query.t -> string option) ->
  Pledge.t list ->
  verdict list * dedup_stats
(** Same verdict contract as {!run_naive}, computed through the dedup
    index and memoized root verification; also reports how much work
    the memoization saved. *)

type sampled = {
  audited : int;  (** pledges the sampler chose to audit *)
  caught : int;  (** [Caught] verdicts among audited pledges *)
  first_caught : int option;  (** stream index of the first catch *)
  caught_by_slave : (int * int) list;  (** sorted [(slave, catches)] *)
}

val run_sampled :
  draws:float array ->
  fraction:float ->
  adaptive:bool ->
  ?floor:float ->
  slave_public:(int -> Secrep_crypto.Sig_scheme.public option) ->
  reexec:(version:int -> Secrep_store.Query.t -> string option) ->
  Pledge.t list ->
  sampled
(** Offline sampled auditing over a recorded stream, for the
    adaptive-no-worse differential.  Pledge [i] is audited iff
    [draws.(i) < p_i]; supplying the same [draws] to a uniform and an
    adaptive run gives common random numbers, so the comparison is
    deterministic per seed.  With [adaptive = false], [p_i] is always
    [fraction]; with [adaptive = true], [p_i] is the live auditor's
    suspicion-weighted probability
    [clamp (fraction * (1+s_i) / (1+mean_s), floor*fraction, 1.0)],
    where suspicion is bumped by the conviction amount on each [Caught]
    verdict (no decay offline).  Until the first catch both samplers
    behave identically, so the first detection index coincides; after
    it, a lone liar's probability can only sit at or above [fraction].
    Raises [Invalid_argument] if [draws] is shorter than the stream. *)
