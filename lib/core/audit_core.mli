(** Offline audit drivers for differential testing.

    A recorded pledge stream plus a re-execution oracle fully determine
    the auditor's verdicts; these drivers compute them two independent
    ways.  [run_naive] is the reference semantics (every pledge fully
    signature-checked and re-executed); [run_dedup] is the production
    fast path (memoized batch-root verification + dedup index).  The
    [differential-audit] fuzz invariant asserts they emit identical
    verdict lists on any scenario. *)

type verdict = Ok_pledge | Caught | Bad_signature

val equal_verdict : verdict -> verdict -> bool
val pp_verdict : Format.formatter -> verdict -> unit

val run_naive :
  slave_public:(int -> Secrep_crypto.Sig_scheme.public option) ->
  reexec:(version:int -> Secrep_store.Query.t -> string option) ->
  Pledge.t list ->
  verdict list
(** One verdict per pledge, in order.  [reexec] returns the honest
    canonical result digest at a version ([None] = unanswerable, which
    convicts nobody and yields [Bad_signature], matching the live
    auditor's treatment of unexecutable queries). *)

type dedup_stats = { reexecs : int; dedup_hits : int; root_verifications : int }

val run_dedup :
  slave_public:(int -> Secrep_crypto.Sig_scheme.public option) ->
  reexec:(version:int -> Secrep_store.Query.t -> string option) ->
  Pledge.t list ->
  verdict list * dedup_stats
(** Same verdict contract as {!run_naive}, computed through the dedup
    index and memoized root verification; also reports how much work
    the memoization saved. *)
