(** The fuzz campaign: generate scenarios, run them on the simulator,
    check invariants, shrink failures.

    This is the engine behind the CLI's [fuzz] subcommand and the
    fuzz-oriented tests; it is {!Prop.check} instantiated with
    {!Scenario.gen}/{!Scenario.shrink} and {!Invariant.check_all}. *)

type outcome = Passed of { runs : int } | Failed of Scenario.t Prop.failure

val run :
  ?runs:int ->
  ?max_shrink_steps:int ->
  ?invariants:Invariant.checker list ->
  ?shards:int ->
  ?slaves_per_master:int ->
  seed:int64 ->
  unit ->
  outcome
(** Defaults: 100 runs, 200 shrink steps, all invariants.  Run [i]
    uses seed [seed + i], so any failure replays with
    [run ~runs:1 ~seed:failure.seed].  Scenarios draw a shard count
    (1–4); sharded scenarios run on a {!Secrep_shard.Deployment} via
    {!Harness.run_sharded} with every invariant checked per shard, and
    violations are prefixed with the failing shard's index.
    [shards] / [slaves_per_master] pin those scenario fields across
    both generation and shrinking (the CLI's [--shards] and
    [--replication-factor]). *)

val replay_hint : Scenario.t Prop.failure -> string
(** One-line CLI invocation reproducing the failing run exactly. *)

val pp_outcome : Format.formatter -> outcome -> unit
(** Human-readable campaign report: pass summary, or the original and
    shrunk counterexamples with the replay hint. *)
