module Fault = Secrep_core.Fault

type net = Lan | Wan | Lossy of float

type op =
  | Read of { client : int; key : int; at : float }
  | Write of { client : int; key : int; at : float }

type fault = {
  slave : int;
  mode : Fault.lie_mode;
  probability : float;
  from_time : float;
}

type chaos =
  | Slave_cut of { slave : int; from_time : float; outage : float }
  | Slave_churn of { slave : int; from_time : float; outage : float }
  | Master_cut of { master : int; from_time : float; outage : float }
  | Auditor_cut of { from_time : float; outage : float }
  | Loss_burst of { loss : float; from_time : float; duration : float }
  | Latency_spike of { factor : float; from_time : float; duration : float }

type t = {
  sys_seed : int;
  n_shards : int;
  n_masters : int;
  slaves_per_master : int;
  n_clients : int;
  n_items : int;
  max_latency : float;
  keepalive_period : float;
  double_check_p : float;
  audit : bool;
  pledge_batch : int;
  read_nonces : bool;
  audit_adaptive : bool;
  net : net;
  faults : fault list;
  chaos : chaos list;
  ops : op list;
}

let clamp lo hi v = max lo (min hi v)
let clampf lo hi v = Float.max lo (Float.min hi v)
let imod v n = ((v mod n) + n) mod n

let normalize s =
  let n_shards = clamp 1 4 s.n_shards in
  let n_masters = clamp 1 3 s.n_masters in
  let slaves_per_master = clamp 1 3 s.slaves_per_master in
  let n_clients = clamp 1 4 s.n_clients in
  let n_items = clamp 1 16 s.n_items in
  let n_slaves = n_masters * slaves_per_master in
  let max_latency = clampf 0.5 10.0 s.max_latency in
  let keepalive_period = clampf (max_latency /. 10.0) (max_latency /. 2.0) s.keepalive_period in
  let normalize_op = function
    | Read { client; key; at } ->
      Read { client = imod client n_clients; key = imod key n_items; at = clampf 0.0 60.0 at }
    | Write { client; key; at } ->
      Write { client = imod client n_clients; key = imod key n_items; at = clampf 0.0 60.0 at }
  in
  let normalize_fault f =
    let mode =
      match f.mode with
      | Fault.Equivocate { clique } ->
        Fault.Equivocate
          { clique = List.sort_uniq compare (List.map (fun c -> imod c n_clients) clique) }
      | Fault.Adaptive { threshold } ->
        Fault.Adaptive { threshold = clampf 0.5 10.0 threshold }
      | Fault.Flaky_omit { burst } -> Fault.Flaky_omit { burst = clamp 1 8 burst }
      | m -> m
    in
    {
      slave = imod f.slave n_slaves;
      mode;
      probability = clampf 0.1 1.0 f.probability;
      from_time = clampf 0.0 30.0 f.from_time;
    }
  in
  let normalize_chaos = function
    | Slave_cut { slave; from_time; outage } ->
      Slave_cut
        {
          slave = imod slave n_slaves;
          from_time = clampf 0.0 60.0 from_time;
          outage = clampf 1.0 30.0 outage;
        }
    | Slave_churn { slave; from_time; outage } ->
      Slave_churn
        {
          slave = imod slave n_slaves;
          from_time = clampf 0.0 60.0 from_time;
          outage = clampf 1.0 30.0 outage;
        }
    | Master_cut { master; from_time; outage } ->
      Master_cut
        {
          master = imod master n_masters;
          from_time = clampf 0.0 60.0 from_time;
          outage = clampf 1.0 30.0 outage;
        }
    | Auditor_cut { from_time; outage } ->
      Auditor_cut
        { from_time = clampf 0.0 60.0 from_time; outage = clampf 1.0 30.0 outage }
    | Loss_burst { loss; from_time; duration } ->
      Loss_burst
        {
          loss = clampf 0.05 0.5 loss;
          from_time = clampf 0.0 60.0 from_time;
          duration = clampf 1.0 30.0 duration;
        }
    | Latency_spike { factor; from_time; duration } ->
      Latency_spike
        {
          factor = clampf 2.0 8.0 factor;
          from_time = clampf 0.0 60.0 from_time;
          duration = clampf 1.0 30.0 duration;
        }
  in
  {
    s with
    sys_seed = abs s.sys_seed;
    n_shards;
    n_masters;
    slaves_per_master;
    n_clients;
    n_items;
    max_latency;
    keepalive_period;
    double_check_p = clampf 0.0 1.0 s.double_check_p;
    pledge_batch = clamp 1 8 s.pledge_batch;
    faults = List.map normalize_fault s.faults;
    chaos = List.map normalize_chaos s.chaos;
    ops = List.map normalize_op s.ops;
  }

let honest s = (normalize s).faults = []
let has_chaos s = (normalize s).chaos <> []
let lossy s = match s.net with Lossy p -> p > 0.0 | Lan | Wan -> false
let op_time = function Read { at; _ } | Write { at; _ } -> at

let chaos_end = function
  | Slave_cut { from_time; outage; _ }
  | Slave_churn { from_time; outage; _ }
  | Master_cut { master = _; from_time; outage }
  | Auditor_cut { from_time; outage } ->
    from_time +. outage
  | Loss_burst { from_time; duration; _ } | Latency_spike { from_time; duration; _ } ->
    from_time +. duration

(* -- generation -------------------------------------------------------- *)

let gen_mode : Fault.lie_mode Gen.t =
  Gen.frequency
    [
      (2, Gen.return Fault.Corrupt_result);
      (2, Gen.return (Fault.Collude "cabal"));
      (2, Gen.return Fault.Stale_state);
      (2, Gen.return Fault.Bad_signature);
      (2, Gen.return Fault.Omit_result);
      (* Strategic attackers (stateful lie policies). *)
      (1, Gen.return Fault.Replay_pledge);
      (1, Gen.map (fun c -> Fault.Equivocate { clique = [ c ] }) (Gen.int_range 0 3));
      (1, Gen.map (fun threshold -> Fault.Adaptive { threshold }) (Gen.choose [ 1.0; 2.0 ]));
      (1, Gen.map (fun burst -> Fault.Flaky_omit { burst }) (Gen.int_range 2 5));
    ]

let gen_fault rng =
  let slave = Gen.int_range 0 8 rng in
  let mode = gen_mode rng in
  let probability = Gen.choose [ 0.5; 1.0 ] rng in
  let from_time = Gen.float_range 0.0 10.0 rng in
  { slave; mode; probability; from_time }

let gen_chaos rng =
  let from_time = Gen.float_range 0.0 30.0 rng in
  let outage = Gen.float_range 2.0 15.0 rng in
  match Gen.int_range 0 7 rng with
  | 0 | 1 -> Slave_cut { slave = Gen.int_range 0 8 rng; from_time; outage }
  | 2 | 3 -> Slave_churn { slave = Gen.int_range 0 8 rng; from_time; outage }
  | 4 -> Master_cut { master = Gen.int_range 0 2 rng; from_time; outage }
  | 5 -> Auditor_cut { from_time; outage }
  | 6 -> Loss_burst { loss = Gen.choose [ 0.1; 0.3 ] rng; from_time; duration = outage }
  | _ -> Latency_spike { factor = Gen.choose [ 2.0; 4.0; 8.0 ] rng; from_time; duration = outage }

let gen_op rng =
  let write = Gen.frequency [ (3, Gen.return false); (2, Gen.return true) ] rng in
  let client = Gen.int_range 0 7 rng in
  let key = Gen.int_range 0 31 rng in
  let at = Gen.float_range 0.0 20.0 rng in
  if write then Write { client; key; at } else Read { client; key; at }

let gen rng =
  let sys_seed = Gen.int_range 0 1_000_000 rng in
  (* Single-shard runs stay the common case; multi-shard draws exercise
     the deployment layer and cross-shard chaos fan-out. *)
  let n_shards =
    Gen.frequency
      [
        (3, Gen.return 1);
        (2, Gen.return 2);
        (1, Gen.return 3);
        (1, Gen.return 4);
      ]
      rng
  in
  let n_masters = Gen.int_range 1 3 rng in
  let slaves_per_master = Gen.int_range 1 3 rng in
  let n_clients = Gen.int_range 1 4 rng in
  let n_items = Gen.int_range 1 16 rng in
  let max_latency = Gen.choose [ 1.0; 2.0; 5.0 ] rng in
  let keepalive_frac = Gen.choose [ 0.15; 0.3; 0.5 ] rng in
  let double_check_p = Gen.choose [ 0.0; 0.05; 0.3 ] rng in
  let audit = Gen.frequency [ (3, Gen.return true); (1, Gen.return false) ] rng in
  let pledge_batch = Gen.choose [ 1; 2; 3; 4 ] rng in
  let read_nonces = Gen.frequency [ (1, Gen.return true); (2, Gen.return false) ] rng in
  let audit_adaptive = Gen.frequency [ (1, Gen.return true); (2, Gen.return false) ] rng in
  let net =
    Gen.frequency
      [
        (3, Gen.return Lan);
        (2, Gen.return Wan);
        (1, Gen.map (fun p -> Lossy p) (Gen.choose [ 0.05; 0.15 ]));
      ]
      rng
  in
  let faults = Gen.list_size (Gen.int_range 0 2) gen_fault rng in
  let chaos = Gen.list_size (Gen.frequency [ (2, Gen.return 0); (2, Gen.return 1); (1, Gen.return 2) ]) gen_chaos rng in
  let ops = Gen.list_size (Gen.int_range 0 25) gen_op rng in
  normalize
    {
      sys_seed;
      n_shards;
      n_masters;
      slaves_per_master;
      n_clients;
      n_items;
      max_latency;
      keepalive_period = max_latency *. keepalive_frac;
      double_check_p;
      audit;
      pledge_batch;
      read_nonces;
      audit_adaptive;
      net;
      faults;
      chaos;
      ops;
    }

(* -- shrinking --------------------------------------------------------- *)

let shrink_op op =
  let towards_zero field = Shrink.int_towards ~target:0 field in
  match op with
  | Read { client; key; at } ->
    Seq.append
      (Seq.map (fun client -> Read { client; key; at }) (towards_zero client))
      (Seq.map (fun key -> Read { client; key; at }) (towards_zero key))
  | Write { client; key; at } ->
    Seq.append
      (Seq.map (fun client -> Write { client; key; at }) (towards_zero client))
      (Seq.map (fun key -> Write { client; key; at }) (towards_zero key))

let shrink_fault f =
  let base = Seq.map (fun slave -> { f with slave }) (Shrink.int_towards ~target:0 f.slave) in
  (* Strategic modes first shrink to the plain liar: a violation that
     survives as [Corrupt_result] implicates the base protocol, not the
     attack policy. *)
  match f.mode with
  | Fault.Replay_pledge | Fault.Equivocate _ | Fault.Adaptive _ | Fault.Flaky_omit _ ->
    Seq.append (Seq.return { f with mode = Fault.Corrupt_result }) base
  | Fault.Corrupt_result | Fault.Collude _ | Fault.Stale_state | Fault.Bad_signature
  | Fault.Omit_result ->
    base

let shrink_chaos = function
  | Slave_cut { slave; from_time; outage } ->
    Seq.map
      (fun slave -> Slave_cut { slave; from_time; outage })
      (Shrink.int_towards ~target:0 slave)
  | Slave_churn { slave; from_time; outage } ->
    Seq.append
      (Seq.return (Slave_cut { slave; from_time; outage }))
      (Seq.map
         (fun slave -> Slave_churn { slave; from_time; outage })
         (Shrink.int_towards ~target:0 slave))
  | Master_cut { master; from_time; outage } ->
    Seq.map
      (fun master -> Master_cut { master; from_time; outage })
      (Shrink.int_towards ~target:0 master)
  | Auditor_cut _ | Loss_burst _ | Latency_spike _ -> Seq.empty

let shrink s =
  let with_ops ops = { s with ops } in
  let with_faults faults = { s with faults } in
  let with_chaos chaos = { s with chaos } in
  let scalar_shrinks =
    List.to_seq
      (List.concat
         [
           (* Pull toward one shard first: a violation that survives on
              the single-content system implicates the protocol, not
              the deployment layer. *)
           List.of_seq
             (Seq.map (fun n_shards -> { s with n_shards })
                (Shrink.int_towards ~target:1 s.n_shards));
           List.of_seq
             (Seq.map (fun n_clients -> { s with n_clients })
                (Shrink.int_towards ~target:1 s.n_clients));
           List.of_seq
             (Seq.map
                (fun slaves_per_master -> { s with slaves_per_master })
                (Shrink.int_towards ~target:1 s.slaves_per_master));
           List.of_seq
             (Seq.map (fun n_masters -> { s with n_masters })
                (Shrink.int_towards ~target:1 s.n_masters));
           List.of_seq
             (Seq.map (fun n_items -> { s with n_items })
                (Shrink.int_towards ~target:1 s.n_items));
           (if s.double_check_p > 0.0 then [ { s with double_check_p = 0.0 } ] else []);
           (if s.pledge_batch > 1 then [ { s with pledge_batch = 1 } ] else []);
           (if s.read_nonces then [ { s with read_nonces = false } ] else []);
           (if s.audit_adaptive then [ { s with audit_adaptive = false } ] else []);
           (match s.net with Lan -> [] | Wan | Lossy _ -> [ { s with net = Lan } ]);
         ])
  in
  Seq.map normalize
    (Seq.append
       (Seq.map with_ops (Shrink.list ~elt:shrink_op s.ops))
       (Seq.append
          (Seq.map with_chaos (Shrink.list ~elt:shrink_chaos s.chaos))
          (Seq.append (Seq.map with_faults (Shrink.list ~elt:shrink_fault s.faults)) scalar_shrinks)))

(* -- printing ---------------------------------------------------------- *)

let net_to_string = function
  | Lan -> "lan"
  | Wan -> "wan"
  | Lossy p -> Printf.sprintf "lossy(%.2g)" p

let mode_to_string = function
  | Fault.Corrupt_result -> "corrupt"
  | Fault.Collude tag -> Printf.sprintf "collude:%s" tag
  | Fault.Stale_state -> "stale"
  | Fault.Bad_signature -> "bad-signature"
  | Fault.Omit_result -> "omit"
  | Fault.Replay_pledge -> "replay"
  | Fault.Equivocate { clique } ->
    Printf.sprintf "equivocate:[%s]" (String.concat "," (List.map string_of_int clique))
  | Fault.Adaptive { threshold } -> Printf.sprintf "adaptive:%.2g" threshold
  | Fault.Flaky_omit { burst } -> Printf.sprintf "flaky-omit:%d" burst

let pp_op fmt = function
  | Read { client; key; at } -> Format.fprintf fmt "read(c%d, k%d, t=%.2f)" client key at
  | Write { client; key; at } -> Format.fprintf fmt "write(c%d, k%d, t=%.2f)" client key at

let pp_fault fmt f =
  Format.fprintf fmt "slave %d: %s p=%.2g from t=%.2f" f.slave (mode_to_string f.mode)
    f.probability f.from_time

let pp_chaos fmt = function
  | Slave_cut { slave; from_time; outage } ->
    Format.fprintf fmt "cut slave %d [%.2f, %.2f]" slave from_time (from_time +. outage)
  | Slave_churn { slave; from_time; outage } ->
    Format.fprintf fmt "churn slave %d [%.2f, %.2f]" slave from_time (from_time +. outage)
  | Master_cut { master; from_time; outage } ->
    Format.fprintf fmt "cut master %d [%.2f, %.2f]" master from_time (from_time +. outage)
  | Auditor_cut { from_time; outage } ->
    Format.fprintf fmt "cut auditor [%.2f, %.2f]" from_time (from_time +. outage)
  | Loss_burst { loss; from_time; duration } ->
    Format.fprintf fmt "loss %.2g [%.2f, %.2f]" loss from_time (from_time +. duration)
  | Latency_spike { factor; from_time; duration } ->
    Format.fprintf fmt "latency x%.2g [%.2f, %.2f]" factor from_time (from_time +. duration)

let pp fmt s =
  Format.fprintf fmt
    "@[<v>scenario:@,\
    \  sys_seed=%d  %d shard(s), %d master(s) x %d slave(s), %d client(s), %d item(s)@,\
    \  max_latency=%.2g keepalive=%.2g double_check_p=%.2g audit=%b batch=%d nonces=%b adaptive=%b net=%s@,\
    \  faults: %s@,\
    \  chaos: %s@,\
    \  ops (%d):@,%a@]"
    s.sys_seed s.n_shards s.n_masters s.slaves_per_master s.n_clients s.n_items s.max_latency
    s.keepalive_period s.double_check_p s.audit s.pledge_batch s.read_nonces
    s.audit_adaptive (net_to_string s.net)
    (if s.faults = [] then "none"
     else String.concat "; " (List.map (Format.asprintf "%a" pp_fault) s.faults))
    (if s.chaos = [] then "none"
     else String.concat "; " (List.map (Format.asprintf "%a" pp_chaos) s.chaos))
    (List.length s.ops)
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun fmt op ->
         Format.fprintf fmt "    %a" pp_op op))
    s.ops

let to_string s = Format.asprintf "%a" pp s
