module Prng = Secrep_crypto.Prng

type 'a t = Prng.t -> 'a

let return x _rng = x
let map f g rng = f (g rng)
let bind g f rng = f (g rng) rng

(* Explicit lets everywhere: OCaml's evaluation order inside tuples and
   [List.init] is unspecified, and an unspecified order would make
   "same seed, same value" silently compiler-dependent. *)
let both a b rng =
  let x = a rng in
  let y = b rng in
  (x, y)

let int_range lo hi rng =
  if hi < lo then invalid_arg "Gen.int_range: hi < lo";
  lo + Prng.int rng (hi - lo + 1)

let float_range lo hi rng = lo +. (Prng.float rng *. (hi -. lo))
let bool rng = Prng.bool rng

let choose xs rng =
  match xs with
  | [] -> invalid_arg "Gen.choose: empty list"
  | _ -> List.nth xs (Prng.int rng (List.length xs))

let oneof gens rng =
  match gens with
  | [] -> invalid_arg "Gen.oneof: empty list"
  | _ -> (List.nth gens (Prng.int rng (List.length gens))) rng

let frequency weighted rng =
  let total = List.fold_left (fun acc (w, _) -> acc + w) 0 weighted in
  if total <= 0 then invalid_arg "Gen.frequency: weights must sum to a positive value";
  let roll = Prng.int rng total in
  let rec pick acc = function
    | [] -> invalid_arg "Gen.frequency: unreachable"
    | (w, g) :: rest -> if roll < acc + w then g rng else pick (acc + w) rest
  in
  pick 0 weighted

let list_size size elt rng =
  let n = size rng in
  let rec build i acc = if i = n then List.rev acc else build (i + 1) (elt rng :: acc) in
  build 0 []

let pair = both

let triple a b c rng =
  let x = a rng in
  let y = b rng in
  let z = c rng in
  (x, y, z)

let run ~seed g = g (Prng.create ~seed)
