module System = Secrep_core.System
module Config = Secrep_core.Config
module Fault = Secrep_core.Fault
module Sim = Secrep_sim.Sim
module Trace = Secrep_sim.Trace
module Event = Secrep_sim.Event
module Prng = Secrep_crypto.Prng
module Sha1 = Secrep_crypto.Sha1
module Hex = Secrep_crypto.Hex
module Catalog = Secrep_workload.Catalog
module Schedule = Secrep_chaos.Schedule
module Injector = Secrep_chaos.Injector
module Query = Secrep_store.Query
module Oplog = Secrep_store.Oplog
module Value = Secrep_store.Value
module Canonical = Secrep_store.Canonical

type accepted_read = {
  time : float;
  client : int;
  slave : int;
  version : int;
  wrong : bool;
}

type run_result = {
  scenario : Scenario.t;
  events : Trace.record list;
  accepted : accepted_read list;
  end_time : float;
  pledges : Secrep_core.Pledge.t list;
  reexec : version:int -> Query.t -> string option;
  slave_public : int -> Secrep_crypto.Sig_scheme.public option;
}

let net_profile = function
  | Scenario.Lan -> System.lan_net
  | Scenario.Wan -> System.default_net
  | Scenario.Lossy p -> { System.lan_net with System.loss = p }

(* Each scenario chaos window expands to a disrupt/heal entry pair. *)
let schedule_of_chaos chaos =
  let entry time action = { Schedule.time; action } in
  List.concat_map
    (function
      | Scenario.Slave_cut { slave; from_time; outage } ->
        [
          entry from_time (Schedule.Cut_slave slave);
          entry (from_time +. outage) (Schedule.Heal_slave slave);
        ]
      | Scenario.Slave_churn { slave; from_time; outage } ->
        [
          entry from_time (Schedule.Crash_slave slave);
          entry (from_time +. outage) (Schedule.Recover_slave slave);
        ]
      | Scenario.Master_cut { master; from_time; outage } ->
        [
          entry from_time (Schedule.Cut_master master);
          entry (from_time +. outage) (Schedule.Heal_master master);
        ]
      | Scenario.Auditor_cut { from_time; outage } ->
        [
          entry from_time Schedule.Cut_auditor;
          entry (from_time +. outage) Schedule.Heal_auditor;
        ]
      | Scenario.Loss_burst { loss; from_time; duration } ->
        [
          entry from_time (Schedule.Loss_burst loss);
          entry (from_time +. duration) Schedule.Loss_normal;
        ]
      | Scenario.Latency_spike { factor; from_time; duration } ->
        [
          entry from_time (Schedule.Latency_spike factor);
          entry (from_time +. duration) Schedule.Latency_normal;
        ])
    chaos

let run scenario =
  let s = Scenario.normalize scenario in
  let config =
    Config.validate_exn
      {
        Config.default with
        Config.max_latency = s.Scenario.max_latency;
        keepalive_period = s.Scenario.keepalive_period;
        double_check_probability = s.Scenario.double_check_p;
        audit_enabled = s.Scenario.audit;
        pledge_batch_size = s.Scenario.pledge_batch;
        read_nonces = s.Scenario.read_nonces;
        audit_adaptive = s.Scenario.audit_adaptive;
      }
  in
  let system =
    System.create ~n_masters:s.Scenario.n_masters
      ~slaves_per_master:s.Scenario.slaves_per_master ~n_clients:s.Scenario.n_clients
      ~config ~net:(net_profile s.Scenario.net)
      ~seed:(Int64.of_int s.Scenario.sys_seed)
      ()
  in
  let sim = System.sim system in
  (* Capture the live stream: the ring in [System.trace] may overwrite
     old records, subscribers see everything. *)
  let events_rev = ref [] in
  Trace.on_emit (System.trace system) (fun r -> events_rev := r :: !events_rev);
  (* Record every pledge the auditor side receives, in delivery order:
     the differential-audit invariant replays this exact stream through
     both offline drivers. *)
  let pledges_rev = ref [] in
  System.on_pledge_submitted system (fun p -> pledges_rev := p :: !pledges_rev);
  let content =
    Catalog.product_catalog
      (Prng.create ~seed:(Int64.of_int ((2 * s.Scenario.sys_seed) + 1)))
      ~n:s.Scenario.n_items
  in
  System.load_content system content;
  let keys = Array.of_list (List.map fst content) in
  List.iter
    (fun (f : Scenario.fault) ->
      System.set_slave_behavior system ~slave:f.Scenario.slave
        (Fault.Malicious
           {
             probability = f.Scenario.probability;
             mode = f.Scenario.mode;
             from_time = f.Scenario.from_time;
           }))
    s.Scenario.faults;
  Injector.apply system (schedule_of_chaos s.Scenario.chaos);
  let accepted_rev = ref [] in
  List.iteri
    (fun idx op ->
      match op with
      | Scenario.Read { client; key; at } ->
        let query = Query.point_read keys.(key) in
        ignore
          (Sim.schedule_at sim ~time:at (fun () ->
               System.read system ~client query ~on_done:(fun report ->
                   match report.Secrep_core.Client.outcome with
                   | `Accepted result ->
                     let slave =
                       match report.Secrep_core.Client.served_by with
                       | Some slave -> slave
                       | None -> -1
                     in
                     let version = report.Secrep_core.Client.version in
                     let wrong =
                       match
                         System.check_result system ~version query
                           ~digest:(Canonical.result_digest result)
                       with
                       | Some ok -> not ok
                       | None -> false
                     in
                     accepted_rev :=
                       { time = Sim.now sim; client; slave; version; wrong } :: !accepted_rev
                   | `Served_by_master _ | `Gave_up -> ())))
      | Scenario.Write { client; key; at } ->
        let op =
          Oplog.Set_field
            { key = keys.(key); field = "stock"; value = Value.Int (1000 + idx) }
        in
        ignore
          (Sim.schedule_at sim ~time:at (fun () ->
               System.write system ~client op ~on_done:(fun _ack -> ()))))
    s.Scenario.ops;
  (* Run well past the last scheduled op: masters space commits by
     max_latency, so the write backlog alone can take
     (n_writes + 1) * max_latency to drain; then leave the auditor its
     lag slack plus a settling margin for retries and exclusions.
     Every read must also be able to exhaust its worst-case retry
     ladder — (retry_limit + 2) timeouts plus backoff, then the
     degraded master fallback — so the availability invariant can
     demand an answer for each issued read.  Chaos windows extend the
     horizon too: a recovery at the last heal still needs max_latency
     to converge. *)
  let last_op =
    List.fold_left (fun acc op -> Float.max acc (Scenario.op_time op)) 0.0 s.Scenario.ops
  in
  let last_heal =
    List.fold_left (fun acc c -> Float.max acc (Scenario.chaos_end c)) 0.0 s.Scenario.chaos
  in
  let n_writes =
    List.length
      (List.filter (function Scenario.Write _ -> true | Scenario.Read _ -> false) s.Scenario.ops)
  in
  let read_slack =
    float_of_int (config.Config.read_retry_limit + 2)
    *. ((config.Config.read_timeout_factor *. s.Scenario.max_latency)
       +. config.Config.retry_backoff_cap)
  in
  let horizon =
    Float.max last_op (last_heal +. (2.0 *. s.Scenario.max_latency))
    +. (float_of_int (n_writes + 2) *. s.Scenario.max_latency)
    +. config.Config.audit_lag_slack
    +. (10.0 *. s.Scenario.max_latency)
    +. read_slack +. 30.0
  in
  System.run_until system horizon;
  {
    scenario = s;
    events = List.rev !events_rev;
    accepted = List.rev !accepted_rev;
    end_time = Sim.now sim;
    pledges = List.rev !pledges_rev;
    reexec = (fun ~version query -> System.reexec_digest system ~version query);
    slave_public =
      (fun slave_id ->
        if slave_id >= 0 && slave_id < System.n_slaves system then
          Some (Secrep_core.Slave.public (System.slave system slave_id))
        else None);
  }

(* -- sharded execution -------------------------------------------------

   With [n_shards > 1] the scenario runs on a [Secrep_shard.Deployment]
   instead of a bare system: K unmodified single-content instances over
   a shared host pool, advanced in lockstep.  Ops route by key
   ([key mod K] picks the shard, the key indexes that shard's own
   catalogue), faults target [slave mod K]'s shard, and chaos windows
   become cross-shard: slave cuts and churn act on pool *hosts* (every
   co-located replica is hit), auditor cuts and network degradation hit
   every shard.  The result is one [run_result] per shard, each judged
   by the full invariant set against that shard's own stream. *)

module Deployment = Secrep_shard.Deployment

let shard_of_key ~n_shards key = key mod n_shards
let shard_of_fault ~n_shards (f : Scenario.fault) = f.Scenario.slave mod n_shards

let run_sharded ?domains scenario =
  let s = Scenario.normalize scenario in
  let k = s.Scenario.n_shards in
  if k <= 1 then [ run scenario ]
  else begin
    let n_slaves = s.Scenario.n_masters * s.Scenario.slaves_per_master in
    let config =
      Config.validate_exn
        {
          Config.default with
          Config.max_latency = s.Scenario.max_latency;
          keepalive_period = s.Scenario.keepalive_period;
          double_check_probability = s.Scenario.double_check_p;
          audit_enabled = s.Scenario.audit;
          pledge_batch_size = s.Scenario.pledge_batch;
          read_nonces = s.Scenario.read_nonces;
          audit_adaptive = s.Scenario.audit_adaptive;
        }
    in
    let deployment =
      Deployment.create ~n_shards:k ~n_masters:s.Scenario.n_masters
        ~replication_factor:n_slaves ~n_clients:s.Scenario.n_clients ~config
        ~net:(net_profile s.Scenario.net)
        ~seed:(Int64.of_int s.Scenario.sys_seed)
        ~items_per_shard:s.Scenario.n_items ?domains ()
    in
    let pool = Deployment.pool_size deployment in
    (* Per-shard capture: subscribe each shard's own trace so streams
       stay pure System streams (deployment placement events live in
       the deployment trace, not here). *)
    let events_rev = Array.make k [] in
    let pledges_rev = Array.make k [] in
    let accepted_rev = Array.make k [] in
    for i = 0 to k - 1 do
      let sys = Deployment.system deployment i in
      Trace.on_emit (System.trace sys) (fun r -> events_rev.(i) <- r :: events_rev.(i));
      System.on_pledge_submitted sys (fun p -> pledges_rev.(i) <- p :: pledges_rev.(i))
    done;
    (* Faults land on the shard their slave index selects. *)
    List.iter
      (fun (f : Scenario.fault) ->
        let shard = shard_of_fault ~n_shards:k f in
        System.set_slave_behavior
          (Deployment.system deployment shard)
          ~slave:f.Scenario.slave
          (Fault.Malicious
             {
               probability = f.Scenario.probability;
               mode = f.Scenario.mode;
               from_time = f.Scenario.from_time;
             }))
      s.Scenario.faults;
    (* Cross-shard chaos windows. *)
    List.iter
      (fun c ->
        match c with
        | Scenario.Slave_cut { slave; from_time; outage } ->
          let host = slave mod pool in
          Deployment.cut_host deployment ~at:from_time host;
          Deployment.heal_host deployment ~at:(from_time +. outage) host
        | Scenario.Slave_churn { slave; from_time; outage } ->
          let host = slave mod pool in
          Deployment.crash_host deployment ~at:from_time host;
          Deployment.recover_host deployment ~at:(from_time +. outage) host
        | Scenario.Master_cut { master; from_time; outage } ->
          let shard = master mod k in
          let sys = Deployment.system deployment shard in
          Deployment.schedule deployment ~shard ~time:from_time (fun () ->
              System.set_master_connectivity sys ~master_id:master ~up:false);
          Deployment.schedule deployment ~shard ~time:(from_time +. outage) (fun () ->
              System.set_master_connectivity sys ~master_id:master ~up:true)
        | Scenario.Auditor_cut { from_time; outage } ->
          for i = 0 to k - 1 do
            let sys = Deployment.system deployment i in
            Deployment.schedule deployment ~shard:i ~time:from_time (fun () ->
                System.set_auditor_connectivity sys ~up:false);
            Deployment.schedule deployment ~shard:i ~time:(from_time +. outage) (fun () ->
                System.set_auditor_connectivity sys ~up:true)
          done
        | Scenario.Loss_burst { loss; from_time; duration } ->
          for i = 0 to k - 1 do
            let sys = Deployment.system deployment i in
            Deployment.schedule deployment ~shard:i ~time:from_time (fun () ->
                System.set_loss sys (Some loss));
            Deployment.schedule deployment ~shard:i ~time:(from_time +. duration)
              (fun () -> System.set_loss sys None)
          done
        | Scenario.Latency_spike { factor; from_time; duration } ->
          for i = 0 to k - 1 do
            let sys = Deployment.system deployment i in
            Deployment.schedule deployment ~shard:i ~time:from_time (fun () ->
                System.set_latency_factor sys factor);
            Deployment.schedule deployment ~shard:i ~time:(from_time +. duration)
              (fun () -> System.set_latency_factor sys 1.0)
          done)
      s.Scenario.chaos;
    (* Ops route by key: disjoint per-shard workloads by construction. *)
    List.iteri
      (fun idx op ->
        match op with
        | Scenario.Read { client; key; at } ->
          let shard = shard_of_key ~n_shards:k key in
          let sys = Deployment.system deployment shard in
          let query = Query.point_read (Deployment.keys deployment shard).(key) in
          Deployment.schedule deployment ~shard ~time:at (fun () ->
              Deployment.read deployment ~shard ~client query ~on_done:(fun report ->
                  match report.Secrep_core.Client.outcome with
                  | `Accepted result ->
                    let slave =
                      match report.Secrep_core.Client.served_by with
                      | Some slave -> slave
                      | None -> -1
                    in
                    let version = report.Secrep_core.Client.version in
                    let wrong =
                      match
                        System.check_result sys ~version query
                          ~digest:(Canonical.result_digest result)
                      with
                      | Some ok -> not ok
                      | None -> false
                    in
                    accepted_rev.(shard) <-
                      {
                        time = Sim.now (System.sim sys);
                        client;
                        slave;
                        version;
                        wrong;
                      }
                      :: accepted_rev.(shard)
                  | `Served_by_master _ | `Gave_up -> ()))
        | Scenario.Write { client; key; at } ->
          let shard = shard_of_key ~n_shards:k key in
          let op =
            Oplog.Set_field
              {
                key = (Deployment.keys deployment shard).(key);
                field = "stock";
                value = Value.Int (1000 + idx);
              }
          in
          Deployment.schedule deployment ~shard ~time:at (fun () ->
              Deployment.write deployment ~shard ~client op ~on_done:(fun _ack -> ())))
      s.Scenario.ops;
    (* Same horizon formula as the single-shard path, computed over the
       global op/chaos schedule: every shard runs to the same end time. *)
    let last_op =
      List.fold_left (fun acc op -> Float.max acc (Scenario.op_time op)) 0.0 s.Scenario.ops
    in
    let last_heal =
      List.fold_left (fun acc c -> Float.max acc (Scenario.chaos_end c)) 0.0 s.Scenario.chaos
    in
    let n_writes =
      List.length
        (List.filter
           (function Scenario.Write _ -> true | Scenario.Read _ -> false)
           s.Scenario.ops)
    in
    let read_slack =
      float_of_int (config.Config.read_retry_limit + 2)
      *. ((config.Config.read_timeout_factor *. s.Scenario.max_latency)
         +. config.Config.retry_backoff_cap)
    in
    let horizon =
      Float.max last_op (last_heal +. (2.0 *. s.Scenario.max_latency))
      +. (float_of_int (n_writes + 2) *. s.Scenario.max_latency)
      +. config.Config.audit_lag_slack
      +. (10.0 *. s.Scenario.max_latency)
      +. read_slack +. 30.0
    in
    Deployment.run_until deployment horizon;
    List.init k (fun i ->
        let sys = Deployment.system deployment i in
        (* Each shard is judged against the slice of the scenario it
           actually saw: its own faults and ops.  Chaos stays global —
           every window fans out across the pool. *)
        let scenario_i =
          {
            s with
            Scenario.faults =
              List.filter (fun f -> shard_of_fault ~n_shards:k f = i) s.Scenario.faults;
            ops =
              List.filter
                (fun op ->
                  shard_of_key ~n_shards:k
                    (match op with
                    | Scenario.Read { key; _ } | Scenario.Write { key; _ } -> key)
                  = i)
                s.Scenario.ops;
          }
        in
        {
          scenario = scenario_i;
          events = List.rev events_rev.(i);
          accepted = List.rev accepted_rev.(i);
          end_time = Sim.now (System.sim sys);
          pledges = List.rev pledges_rev.(i);
          reexec = (fun ~version query -> System.reexec_digest sys ~version query);
          slave_public =
            (fun slave_id ->
              if slave_id >= 0 && slave_id < System.n_slaves sys then
                Some (Secrep_core.Slave.public (System.slave sys slave_id))
              else None);
        })
  end

let events_digest result =
  let ctx = Sha1.init () in
  List.iter
    (fun (r : Trace.record) ->
      Sha1.feed ctx
        (Printf.sprintf "%.9f|%s|%s\n" r.Trace.time r.Trace.source
           (Event.to_string r.Trace.event)))
    result.events;
  Hex.encode (Sha1.finalize ctx)
