(** Paper-level invariants checked against a harness run's typed event
    stream.

    Each checker returns [Error message] naming the first violation it
    finds.  Some invariants only hold under preconditions the checker
    derives from the scenario itself (e.g. eventual detection needs
    the auditor on and a loss-free network, because a dropped
    client-to-auditor pledge forward legitimately loses the evidence);
    when the precondition fails the checker passes vacuously. *)

type checker = {
  name : string;
  doc : string;
  check : Harness.run_result -> (unit, string) result;
}

val detection : checker
(** Every accepted-but-wrong answer from a lying slave is eventually
    flagged: a double-check mismatch, an audit conviction or an
    exclusion of that slave appears in the stream.  Requires
    [audit = true] and a loss-free network. *)

val no_false_accusation : checker
(** A run with no injected faults never produces a double-check
    mismatch, audit conviction or exclusion — honest slaves are never
    accused, even over lossy links. *)

val staleness : checker
(** A pledge verified OK at version [v] and time [t] implies
    [t <= commit(v+1) + max_latency]: accepted data is never staler
    than the freshness bound (§3.2). *)

val write_spacing : checker
(** Per master, consecutive commits are at least [max_latency] apart —
    the write-rate limit of §3.1. *)

val pledge_validity : checker
(** Every accepted read is backed by a pledge that verified OK for the
    same (client, slave, version) triple. *)

val all : checker list

val named : string list -> (checker list, string) result
(** Resolve checker names ([]= all); [Error] lists the unknown name. *)

val check_all : checker list -> Harness.run_result -> (unit, string) result
(** First violation, prefixed with the checker's name. *)
