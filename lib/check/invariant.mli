(** Paper-level invariants checked against a harness run's typed event
    stream.

    Each checker returns [Error message] naming the first violation it
    finds.  Some invariants only hold under preconditions the checker
    derives from the scenario itself (e.g. eventual detection needs
    the auditor on and a loss-free network, because a dropped
    client-to-auditor pledge forward legitimately loses the evidence);
    when the precondition fails the checker passes vacuously. *)

type checker = {
  name : string;
  doc : string;
  check : Harness.run_result -> (unit, string) result;
}

val detection : checker
(** Every accepted-but-wrong answer from a lying slave is eventually
    flagged: a double-check mismatch, an audit conviction or an
    exclusion of that slave appears in the stream.  Requires
    [audit = true], a loss-free network and no chaos (an auditor cut
    can legitimately drop the convicting evidence). *)

val no_false_accusation : checker
(** A run with no injected faults never produces a double-check
    mismatch, audit conviction or exclusion — honest slaves are never
    accused, even over lossy links. *)

val staleness : checker
(** A pledge verified OK at version [v] and time [t] implies
    [t <= commit(v+1) + max_latency]: accepted data is never staler
    than the freshness bound (§3.2). *)

val write_spacing : checker
(** Per master, consecutive commits are at least [max_latency] apart —
    the write-rate limit of §3.1. *)

val pledge_validity : checker
(** Every accepted read is backed by a pledge that verified OK for the
    same (client, slave, version) triple. *)

val availability : checker
(** Every [Read_issued] has a matching [Read_answered]: reads either
    succeed (from a slave or, degraded, from the master) or fail
    explicitly — they never hang, even under partitions and churn. *)

val differential_audit : checker
(** Replays the run's recorded pledge stream through
    {!Secrep_core.Audit_core.run_naive} (full per-pledge signature
    verification + re-execution) and {!Secrep_core.Audit_core.run_dedup}
    (memoized batch-root verification + dedup index) and demands
    verdict-for-verdict identical outcomes.  This is the differential
    guarantee that batching and dedup are pure optimizations. *)

val recovery_convergence : checker
(** A slave that rejoins ([Node_recovered]) holds, or catches up to,
    the version committed at its rejoin time within [max_latency].
    Recoveries the trace cannot judge are skipped: lossy nets, slaves
    with injected faults, windows overlapping another disturbance
    (master cut or crash, re-cut of the same slave, loss burst or
    latency spike), exclusions, and runs ending before the deadline. *)

val replay_rejection : checker
(** With [read_nonces] on, a replayed pledge that reaches its victim
    in time is rejected, and rejected {e for the nonce mismatch}.
    Each [Attack_launched] (mode [replay-pledge]) is matched to the
    first [Pledge_verified] for its (client, slave, request) triple
    inside the attacked attempt's timeout window, which is the only
    unambiguous attribution once retries reuse the request id; a
    launch whose reply never shows up in the window is not judged. *)

val equivocation_detection : checker
(** An equivocating slave whose lie was verified OK by the victim is
    flagged (double-check mismatch, audit conviction or exclusion) by
    the end of the run.  Requires audit on with uniform sampling, a
    loss-free network, no chaos and no auditor overload — each of
    those can legitimately drop the convicting pledge. *)

val adaptive_no_worse : checker
(** Differential over the recorded pledge stream via
    {!Secrep_core.Audit_core.run_sampled}: a uniform and a
    suspicion-weighted sampler share one pre-drawn randomness array
    (common random numbers), so the comparison is deterministic.
    Asserts the first detection index coincides (the samplers are
    identical until the first catch) and, when the stream contains at
    most one lying slave, that the adaptive sampler catches at least
    as many lying pledges — the liar's audit probability never drops
    below the uniform fraction. *)

val parallel_determinism : checker
(** Differential oracle for the domain-parallel shard scheduler:
    re-runs the result's scenario through {!Harness.run_sharded} with
    [domains = 0] (sequential lockstep) and [domains = 2] (parallel
    worker pool) and demands byte-identical per-shard event stream
    digests ({!Harness.events_digest}).  Because both runs replay the
    scenario from scratch, the comparison covers every source of
    divergence downstream of the scheduler — PRNG draws, chaos fan-out,
    rebalance decisions, auditor budgets — not just the merge order.
    Vacuous for single-shard scenarios (no deployment, nothing to
    parallelise). *)

val alert_coverage : checker
(** Cross-check between the fuzz invariants and the online monitor:
    replays the run's event stream through an offline
    {!Secrep_monitor.Slo} (thresholds derived from the scenario's own
    config) and demands that every violated invariant with an online
    counterpart ({!Secrep_monitor.Slo.rule_for_invariant}) is covered
    by at least one raised alert of the matching rule.  An invariant
    violation the monitor would have slept through is itself a
    violation. *)

val all : checker list

val named : string list -> (checker list, string) result
(** Resolve checker names ([]= all); [Error] lists the unknown name. *)

val check_all : checker list -> Harness.run_result -> (unit, string) result
(** First violation, prefixed with the checker's name. *)
