(** Randomized system scenarios for the fuzz harness.

    A scenario is a *value*: topology, protocol knobs, network shape,
    fault injections and a timed operation schedule.  {!gen} draws one
    from a seed, {!Harness.run} executes it deterministically, and
    {!shrink} proposes smaller scenarios so counterexamples come back
    minimal.

    Field values need not be in range a priori — shrinking individual
    fields would otherwise have to keep cross-field consistency —
    {!normalize} clamps everything (client and slave indices by [mod],
    scalars into their legal ranges) before a run. *)

type net =
  | Lan  (** sub-millisecond links, no loss *)
  | Wan  (** the default 2003-flavoured WAN profile *)
  | Lossy of float  (** LAN latencies, this fraction of messages dropped *)

type op =
  | Read of { client : int; key : int; at : float }
  | Write of { client : int; key : int; at : float }

type fault = {
  slave : int;
  mode : Secrep_core.Fault.lie_mode;
  probability : float;
  from_time : float;
}

(** Benign infrastructure failures (as opposed to [fault], which is
    adversarial slave behaviour).  Each value is a self-healing window:
    the disruption starts at [from_time] and is undone [outage] (or
    [duration]) seconds later, so shrinking can drop windows without
    leaving the system permanently degraded. *)
type chaos =
  | Slave_cut of { slave : int; from_time : float; outage : float }
      (** partition the slave's links, then heal *)
  | Slave_churn of { slave : int; from_time : float; outage : float }
      (** fail-stop crash (state wiped), then reinstate from a master *)
  | Master_cut of { master : int; from_time : float; outage : float }
  | Auditor_cut of { from_time : float; outage : float }
  | Loss_burst of { loss : float; from_time : float; duration : float }
  | Latency_spike of { factor : float; from_time : float; duration : float }

type t = {
  sys_seed : int;  (** seeds the system PRNG and the content *)
  n_shards : int;
      (** content items in the deployment (clamped to [1,4]); 1 runs
          the classic single-content system, >1 runs a sharded
          {!Secrep_shard.Deployment} with per-shard invariant checks
          and cross-shard chaos windows *)
  n_masters : int;
  slaves_per_master : int;
  n_clients : int;
  n_items : int;
  max_latency : float;
  keepalive_period : float;
  double_check_p : float;
  audit : bool;
  pledge_batch : int;
      (** [Config.pledge_batch_size]: 1 = classic per-pledge signing,
          >1 = Merkle-batched pledges (clamped to [1,8]) *)
  read_nonces : bool;
      (** [Config.read_nonces]: clients bind pledges to a per-read
          nonce and reject replays *)
  audit_adaptive : bool;
      (** [Config.audit_adaptive]: suspicion-weighted audit sampling
          with quarantine *)
  net : net;
  faults : fault list;
  chaos : chaos list;
  ops : op list;
}

val normalize : t -> t
(** Idempotent; every field in range, every index within the topology. *)

val honest : t -> bool
(** No effective fault after normalization.  Chaos does not count:
    an honest run under partitions must still never accuse anyone. *)

val has_chaos : t -> bool
(** Some chaos window survives normalization. *)

val lossy : t -> bool

val op_time : op -> float

val chaos_end : chaos -> float
(** Time at which the window heals itself. *)

val gen : t Gen.t

val shrink : t Shrink.t
(** Order of attack: drop ops, drop faults, then pull the shard count
    toward 1 (a violation that survives on the single-content system
    implicates the protocol, not the deployment layer), the topology,
    content size and double-check probability toward minimal.  Timing
    parameters ([max_latency], [keepalive_period], op times) are left
    alone: changing them reshapes the whole schedule and mostly makes
    failures vanish for the wrong reason. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
