(** Randomized system scenarios for the fuzz harness.

    A scenario is a *value*: topology, protocol knobs, network shape,
    fault injections and a timed operation schedule.  {!gen} draws one
    from a seed, {!Harness.run} executes it deterministically, and
    {!shrink} proposes smaller scenarios so counterexamples come back
    minimal.

    Field values need not be in range a priori — shrinking individual
    fields would otherwise have to keep cross-field consistency —
    {!normalize} clamps everything (client and slave indices by [mod],
    scalars into their legal ranges) before a run. *)

type net =
  | Lan  (** sub-millisecond links, no loss *)
  | Wan  (** the default 2003-flavoured WAN profile *)
  | Lossy of float  (** LAN latencies, this fraction of messages dropped *)

type op =
  | Read of { client : int; key : int; at : float }
  | Write of { client : int; key : int; at : float }

type fault = {
  slave : int;
  mode : Secrep_core.Fault.lie_mode;
  probability : float;
  from_time : float;
}

type t = {
  sys_seed : int;  (** seeds the system PRNG and the content *)
  n_masters : int;
  slaves_per_master : int;
  n_clients : int;
  n_items : int;
  max_latency : float;
  keepalive_period : float;
  double_check_p : float;
  audit : bool;
  net : net;
  faults : fault list;
  ops : op list;
}

val normalize : t -> t
(** Idempotent; every field in range, every index within the topology. *)

val honest : t -> bool
(** No effective fault after normalization. *)

val lossy : t -> bool

val op_time : op -> float

val gen : t Gen.t

val shrink : t Shrink.t
(** Order of attack: drop ops, drop faults, then pull the topology,
    content size and double-check probability toward minimal.  Timing
    parameters ([max_latency], [keepalive_period], op times) are left
    alone: changing them reshapes the whole schedule and mostly makes
    failures vanish for the wrong reason. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
