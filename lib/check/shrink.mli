(** Shrinkers: candidate sequences of strictly "smaller" values.

    A shrinker maps a failing value to candidates to try next, most
    aggressive first; {!Prop.check} greedily takes the first candidate
    that still fails and repeats until nothing smaller fails.  All
    sequences here are finite. *)

type 'a t = 'a -> 'a Seq.t

val nothing : 'a t

val int_towards : target:int -> int t
(** Candidates between [target] and the value, boldest ([target]
    itself) first, approaching the value by halving. *)

val list : ?elt:'a t -> 'a list t
(** Structural list shrinking: the empty list, then each half, then
    the list with one element dropped, then (with [elt]) element-wise
    shrinks in place. *)

val pair : 'a t -> 'b t -> ('a * 'b) t
(** Shrink the left component first, then the right. *)
