module Trace = Secrep_sim.Trace
module Event = Secrep_sim.Event

type checker = {
  name : string;
  doc : string;
  check : Harness.run_result -> (unit, string) result;
}

let eps = 1e-6

let events_of (r : Harness.run_result) = r.Harness.events

(* Accusation events: the three ways the protocol points a finger. *)
let accused_slaves result =
  List.filter_map
    (fun (rec_ : Trace.record) ->
      match rec_.Trace.event with
      | Event.Audit_conviction { slave; _ } | Event.Slave_excluded { slave; _ }
      | Event.Double_check { slave; outcome = Event.Mismatch; _ } ->
        Some slave
      | _ -> None)
    (events_of result)

let detection =
  {
    name = "detection";
    doc = "accepted wrong answers are eventually flagged (audit on, loss-free net)";
    check =
      (fun result ->
        let s = result.Harness.scenario in
        if (not s.Scenario.audit) || Scenario.lossy s then Ok ()
        else begin
          let flagged = accused_slaves result in
          let unflagged =
            List.filter
              (fun (a : Harness.accepted_read) ->
                a.Harness.wrong && a.Harness.slave >= 0
                && not (List.mem a.Harness.slave flagged))
              result.Harness.accepted
          in
          match unflagged with
          | [] -> Ok ()
          | a :: _ ->
            Error
              (Printf.sprintf
                 "client %d accepted a wrong answer from slave %d (version %d, t=%.3f) \
                  and the slave was never flagged by double-check, audit or exclusion"
                 a.Harness.client a.Harness.slave a.Harness.version a.Harness.time)
        end);
  }

let no_false_accusation =
  {
    name = "no-false-accusation";
    doc = "an all-honest run never accuses anyone";
    check =
      (fun result ->
        if not (Scenario.honest result.Harness.scenario) then Ok ()
        else begin
          match accused_slaves result with
          | [] -> Ok ()
          | slave :: _ ->
            Error
              (Printf.sprintf
                 "slave %d was accused (conviction, exclusion or double-check mismatch) \
                  in a run with no injected faults"
                 slave)
        end);
  }

let staleness =
  {
    name = "staleness";
    doc = "verified pledges are never staler than max_latency";
    check =
      (fun result ->
        let max_latency = result.Harness.scenario.Scenario.max_latency in
        (* Latest commit time of each version across masters: a slave's
           keep-alive for version v predates its own master's commit of
           v+1, which is bounded by this. *)
        let commits = Hashtbl.create 64 in
        List.iter
          (fun (r : Trace.record) ->
            match r.Trace.event with
            | Event.Write_committed { version; _ } ->
              let prev =
                match Hashtbl.find_opt commits version with
                | Some t -> t
                | None -> neg_infinity
              in
              Hashtbl.replace commits version (Float.max prev r.Trace.time)
            | _ -> ())
          (events_of result);
        let violation =
          List.find_opt
            (fun (r : Trace.record) ->
              match r.Trace.event with
              | Event.Pledge_verified { ok = true; version; _ } -> begin
                match Hashtbl.find_opt commits (version + 1) with
                | Some committed -> r.Trace.time > committed +. max_latency +. eps
                | None -> false
              end
              | _ -> false)
            (events_of result)
        in
        match violation with
        | None -> Ok ()
        | Some r ->
          let version =
            match r.Trace.event with
            | Event.Pledge_verified { version; _ } -> version
            | _ -> -1
          in
          Error
            (Printf.sprintf
               "pledge for version %d verified OK at t=%.3f, more than max_latency=%.3g \
                after version %d committed at t=%.3f"
               version r.Trace.time max_latency (version + 1)
               (Hashtbl.find commits (version + 1))));
  }

let write_spacing =
  {
    name = "write-spacing";
    doc = "per-master commits are at least max_latency apart";
    check =
      (fun result ->
        let max_latency = result.Harness.scenario.Scenario.max_latency in
        let by_master = Hashtbl.create 8 in
        List.iter
          (fun (r : Trace.record) ->
            match r.Trace.event with
            | Event.Write_committed { master; version } ->
              let prev =
                match Hashtbl.find_opt by_master master with Some l -> l | None -> []
              in
              Hashtbl.replace by_master master ((version, r.Trace.time) :: prev)
            | _ -> ())
          (events_of result);
        Hashtbl.fold
          (fun master commits acc ->
            match acc with
            | Error _ -> acc
            | Ok () ->
              let sorted =
                List.sort (fun (v1, _) (v2, _) -> compare v1 v2) commits
              in
              let rec walk = function
                | (v1, t1) :: ((v2, t2) :: _ as rest) ->
                  if t2 -. t1 < max_latency -. eps then
                    Error
                      (Printf.sprintf
                         "master %d committed version %d at t=%.3f and version %d at \
                          t=%.3f, closer than max_latency=%.3g"
                         master v1 t1 v2 t2 max_latency)
                  else walk rest
                | [ _ ] | [] -> Ok ()
              in
              walk sorted)
          by_master (Ok ()));
  }

let pledge_validity =
  {
    name = "pledge-validity";
    doc = "every accepted read is backed by an OK pledge verification";
    check =
      (fun result ->
        let verified = Hashtbl.create 64 in
        List.iter
          (fun (r : Trace.record) ->
            match r.Trace.event with
            | Event.Pledge_verified { ok = true; client; slave; version; _ } ->
              let k = (client, slave, version) in
              let n = match Hashtbl.find_opt verified k with Some n -> n | None -> 0 in
              Hashtbl.replace verified k (n + 1)
            | _ -> ())
          (events_of result);
        (* Multiset check: consume one verification per accepted read. *)
        let rec consume = function
          | [] -> Ok ()
          | (a : Harness.accepted_read) :: rest ->
            let k = (a.Harness.client, a.Harness.slave, a.Harness.version) in
            let n = match Hashtbl.find_opt verified k with Some n -> n | None -> 0 in
            if n <= 0 then
              Error
                (Printf.sprintf
                   "client %d accepted a read from slave %d at version %d (t=%.3f) with \
                    no matching OK pledge verification"
                   a.Harness.client a.Harness.slave a.Harness.version a.Harness.time)
            else begin
              Hashtbl.replace verified k (n - 1);
              consume rest
            end
        in
        consume result.Harness.accepted);
  }

let all = [ detection; no_false_accusation; staleness; write_spacing; pledge_validity ]

let named names =
  match names with
  | [] -> Ok all
  | _ ->
    let resolve name =
      match List.find_opt (fun c -> c.name = name) all with
      | Some c -> Ok c
      | None ->
        Error
          (Printf.sprintf "unknown invariant %S (known: %s)" name
             (String.concat ", " (List.map (fun c -> c.name) all)))
    in
    List.fold_right
      (fun name acc ->
        match (resolve name, acc) with
        | Ok c, Ok cs -> Ok (c :: cs)
        | Error e, _ -> Error e
        | _, Error e -> Error e)
      names (Ok [])

let check_all checkers result =
  List.fold_left
    (fun acc c ->
      match acc with
      | Error _ -> acc
      | Ok () -> (
        match c.check result with
        | Ok () -> Ok ()
        | Error msg -> Error (Printf.sprintf "[%s] %s" c.name msg)))
    (Ok ()) checkers
