module Trace = Secrep_sim.Trace
module Event = Secrep_sim.Event

type checker = {
  name : string;
  doc : string;
  check : Harness.run_result -> (unit, string) result;
}

let eps = 1e-6

let events_of (r : Harness.run_result) = r.Harness.events

(* Accusation events: the three ways the protocol points a finger. *)
let accused_slaves result =
  List.filter_map
    (fun (rec_ : Trace.record) ->
      match rec_.Trace.event with
      | Event.Audit_conviction { slave; _ } | Event.Slave_excluded { slave; _ }
      | Event.Double_check { slave; outcome = Event.Mismatch; _ } ->
        Some slave
      | _ -> None)
    (events_of result)

let detection =
  {
    name = "detection";
    doc = "accepted wrong answers are eventually flagged (audit on, loss-free net, no chaos)";
    check =
      (fun result ->
        let s = result.Harness.scenario in
        (* Chaos voids the guarantee the same way loss does: an auditor
           cut drops the forwarded pledge that would have convicted. *)
        if (not s.Scenario.audit) || Scenario.lossy s || Scenario.has_chaos s then Ok ()
        else begin
          let flagged = accused_slaves result in
          let unflagged =
            List.filter
              (fun (a : Harness.accepted_read) ->
                a.Harness.wrong && a.Harness.slave >= 0
                && not (List.mem a.Harness.slave flagged))
              result.Harness.accepted
          in
          match unflagged with
          | [] -> Ok ()
          | a :: _ ->
            Error
              (Printf.sprintf
                 "client %d accepted a wrong answer from slave %d (version %d, t=%.3f) \
                  and the slave was never flagged by double-check, audit or exclusion"
                 a.Harness.client a.Harness.slave a.Harness.version a.Harness.time)
        end);
  }

let no_false_accusation =
  {
    name = "no-false-accusation";
    doc = "an all-honest run never accuses anyone";
    check =
      (fun result ->
        if not (Scenario.honest result.Harness.scenario) then Ok ()
        else begin
          match accused_slaves result with
          | [] -> Ok ()
          | slave :: _ ->
            Error
              (Printf.sprintf
                 "slave %d was accused (conviction, exclusion or double-check mismatch) \
                  in a run with no injected faults"
                 slave)
        end);
  }

let staleness =
  {
    name = "staleness";
    doc = "verified pledges are never staler than max_latency";
    check =
      (fun result ->
        let max_latency = result.Harness.scenario.Scenario.max_latency in
        (* Latest commit time of each version across masters: a slave's
           keep-alive for version v predates its own master's commit of
           v+1, which is bounded by this. *)
        let commits = Hashtbl.create 64 in
        List.iter
          (fun (r : Trace.record) ->
            match r.Trace.event with
            | Event.Write_committed { version; _ } ->
              let prev =
                match Hashtbl.find_opt commits version with
                | Some t -> t
                | None -> neg_infinity
              in
              Hashtbl.replace commits version (Float.max prev r.Trace.time)
            | _ -> ())
          (events_of result);
        let violation =
          List.find_opt
            (fun (r : Trace.record) ->
              match r.Trace.event with
              | Event.Pledge_verified { ok = true; version; _ } -> begin
                match Hashtbl.find_opt commits (version + 1) with
                | Some committed -> r.Trace.time > committed +. max_latency +. eps
                | None -> false
              end
              | _ -> false)
            (events_of result)
        in
        match violation with
        | None -> Ok ()
        | Some r ->
          let version =
            match r.Trace.event with
            | Event.Pledge_verified { version; _ } -> version
            | _ -> -1
          in
          Error
            (Printf.sprintf
               "pledge for version %d verified OK at t=%.3f, more than max_latency=%.3g \
                after version %d committed at t=%.3f"
               version r.Trace.time max_latency (version + 1)
               (Hashtbl.find commits (version + 1))));
  }

let write_spacing =
  {
    name = "write-spacing";
    doc = "per-master commits are at least max_latency apart";
    check =
      (fun result ->
        let max_latency = result.Harness.scenario.Scenario.max_latency in
        let by_master = Hashtbl.create 8 in
        List.iter
          (fun (r : Trace.record) ->
            match r.Trace.event with
            | Event.Write_committed { master; version } ->
              let prev =
                match Hashtbl.find_opt by_master master with Some l -> l | None -> []
              in
              Hashtbl.replace by_master master ((version, r.Trace.time) :: prev)
            | _ -> ())
          (events_of result);
        Hashtbl.fold
          (fun master commits acc ->
            match acc with
            | Error _ -> acc
            | Ok () ->
              let sorted =
                List.sort (fun (v1, _) (v2, _) -> compare v1 v2) commits
              in
              let rec walk = function
                | (v1, t1) :: ((v2, t2) :: _ as rest) ->
                  if t2 -. t1 < max_latency -. eps then
                    Error
                      (Printf.sprintf
                         "master %d committed version %d at t=%.3f and version %d at \
                          t=%.3f, closer than max_latency=%.3g"
                         master v1 t1 v2 t2 max_latency)
                  else walk rest
                | [ _ ] | [] -> Ok ()
              in
              walk sorted)
          by_master (Ok ()));
  }

let pledge_validity =
  {
    name = "pledge-validity";
    doc = "every accepted read is backed by an OK pledge verification";
    check =
      (fun result ->
        let verified = Hashtbl.create 64 in
        List.iter
          (fun (r : Trace.record) ->
            match r.Trace.event with
            | Event.Pledge_verified { ok = true; client; slave; version; _ } ->
              let k = (client, slave, version) in
              let n = match Hashtbl.find_opt verified k with Some n -> n | None -> 0 in
              Hashtbl.replace verified k (n + 1)
            | _ -> ())
          (events_of result);
        (* Multiset check: consume one verification per accepted read. *)
        let rec consume = function
          | [] -> Ok ()
          | (a : Harness.accepted_read) :: rest ->
            let k = (a.Harness.client, a.Harness.slave, a.Harness.version) in
            let n = match Hashtbl.find_opt verified k with Some n -> n | None -> 0 in
            if n <= 0 then
              Error
                (Printf.sprintf
                   "client %d accepted a read from slave %d at version %d (t=%.3f) with \
                    no matching OK pledge verification"
                   a.Harness.client a.Harness.slave a.Harness.version a.Harness.time)
            else begin
              Hashtbl.replace verified k (n - 1);
              consume rest
            end
        in
        consume result.Harness.accepted);
  }

let availability =
  {
    name = "availability";
    doc = "every issued read completes: accepted, served by the master, or an explicit give-up";
    check =
      (fun result ->
        let issued = Hashtbl.create 8 and answered = Hashtbl.create 8 in
        let bump tbl client =
          let n = match Hashtbl.find_opt tbl client with Some n -> n | None -> 0 in
          Hashtbl.replace tbl client (n + 1)
        in
        List.iter
          (fun (r : Trace.record) ->
            match r.Trace.event with
            | Event.Read_issued { client; _ } -> bump issued client
            | Event.Read_answered { client; _ } -> bump answered client
            | _ -> ())
          (events_of result);
        Hashtbl.fold
          (fun client n_issued acc ->
            match acc with
            | Error _ -> acc
            | Ok () ->
              let n_answered =
                match Hashtbl.find_opt answered client with Some n -> n | None -> 0
              in
              if n_answered = n_issued then Ok ()
              else
                Error
                  (Printf.sprintf
                     "client %d issued %d read(s) but only %d completed by t=%.3f — a read \
                      hung without being accepted, served by the master, or failed \
                      explicitly"
                     client n_issued n_answered result.Harness.end_time))
          issued (Ok ()));
  }

(* -- recovery convergence --------------------------------------------- *)

(* Node names as emitted by [System.node_name]. *)
let slave_of_node node =
  match String.index_opt node '-' with
  | Some i when String.sub node 0 i = "slave" -> (
    match int_of_string_opt (String.sub node (i + 1) (String.length node - i - 1)) with
    | Some n -> Some n
    | None -> None)
  | _ -> None

let is_master_node node = String.length node >= 7 && String.sub node 0 7 = "master-"

(* Half-open disturbance windows [a, b): a window closing exactly when a
   recovery happens does not disturb that recovery. *)
let overlaps intervals t0 d = List.exists (fun (a, b) -> a < d && t0 < b) intervals

let recovery_convergence =
  {
    name = "recovery-convergence";
    doc =
      "a node that rejoins after a partition or crash reaches the committed version \
       within max_latency (clean network, honest slave, no overlapping disturbance)";
    check =
      (fun result ->
        let s = result.Harness.scenario in
        if Scenario.lossy s then Ok ()
        else begin
          let max_latency = s.Scenario.max_latency in
          let faulty =
            List.map (fun (f : Scenario.fault) -> f.Scenario.slave) s.Scenario.faults
          in
          (* One pass to collect commits, updates, recoveries, and the
             disturbance windows that make a recovery unjudgeable. *)
          let commits = ref [] (* (time, version) *)
          and updates = ref [] (* (time, slave, to_version) *)
          and recoveries = ref [] (* (time, slave, version) *)
          and exclusions = ref [] (* (time, slave) *)
          and master_down = ref [] (* (from, until) *)
          and slave_down = ref [] (* (slave, (from, until)) *)
          and degraded = ref [] (* (from, until) *)
          and open_master = Hashtbl.create 4
          and open_slave = Hashtbl.create 8
          and open_degraded = ref None in
          List.iter
            (fun (r : Trace.record) ->
              let t = r.Trace.time in
              match r.Trace.event with
              | Event.Write_committed { version; _ } -> commits := (t, version) :: !commits
              | Event.State_update_applied { slave; to_version; _ } ->
                updates := (t, slave, to_version) :: !updates
              | Event.Node_recovered { node; version } -> (
                match slave_of_node node with
                | Some n ->
                  recoveries := (t, n, version) :: !recoveries;
                  (* a crash window for this slave closes here *)
                  (match Hashtbl.find_opt open_slave (`Crash n) with
                  | Some from ->
                    Hashtbl.remove open_slave (`Crash n);
                    slave_down := (n, (from, t)) :: !slave_down
                  | None -> ())
                | None -> ())
              | Event.Node_crashed { node } -> (
                if is_master_node node then master_down := (t, infinity) :: !master_down
                else
                  match slave_of_node node with
                  | Some n -> Hashtbl.replace open_slave (`Crash n) t
                  | None -> ())
              | Event.Partition { target; up } when is_master_node target ->
                if not up then Hashtbl.replace open_master target t
                else begin
                  match Hashtbl.find_opt open_master target with
                  | Some from ->
                    Hashtbl.remove open_master target;
                    master_down := (from, t) :: !master_down
                  | None -> ()
                end
              | Event.Partition { target; up } -> (
                match slave_of_node target with
                | Some n ->
                  if not up then Hashtbl.replace open_slave (`Cut n) t
                  else begin
                    match Hashtbl.find_opt open_slave (`Cut n) with
                    | Some from ->
                      Hashtbl.remove open_slave (`Cut n);
                      slave_down := (n, (from, t)) :: !slave_down
                    | None -> ()
                  end
                | None -> ())
              | Event.Net_degraded { loss; latency_factor } ->
                let is_degraded = loss > 0.0 || latency_factor <> 1.0 in
                (match (!open_degraded, is_degraded) with
                | None, true -> open_degraded := Some t
                | Some from, false ->
                  open_degraded := None;
                  degraded := (from, t) :: !degraded
                | None, false | Some _, true -> ())
              | Event.Slave_excluded { slave; _ } -> exclusions := (t, slave) :: !exclusions
              | _ -> ())
            (events_of result);
          (* Windows still open at the end of the run never healed. *)
          Hashtbl.iter (fun _ from -> master_down := (from, infinity) :: !master_down)
            open_master;
          Hashtbl.iter
            (fun key from ->
              match key with
              | `Crash n | `Cut n -> slave_down := (n, (from, infinity)) :: !slave_down)
            open_slave;
          (match !open_degraded with
          | Some from -> degraded := (from, infinity) :: !degraded
          | None -> ());
          let check_one acc (t0, n, v_rejoin) =
            match acc with
            | Error _ -> acc
            | Ok () ->
              let deadline = t0 +. max_latency in
              let judgeable =
                result.Harness.end_time >= deadline
                && (not (List.mem n faulty))
                && (not (overlaps !master_down t0 deadline))
                && (not
                      (overlaps
                         (List.filter_map
                            (fun (m, iv) -> if m = n then Some iv else None)
                            !slave_down)
                         t0 deadline))
                && (not (overlaps !degraded t0 deadline))
                && not (List.exists (fun (t, m) -> m = n && t <= deadline) !exclusions)
              in
              if not judgeable then Ok ()
              else begin
                let committed =
                  List.fold_left
                    (fun acc (t, v) -> if t <= t0 +. eps then max acc v else acc)
                    0 !commits
                in
                let converged =
                  v_rejoin >= committed
                  || List.exists
                       (fun (t, m, v) ->
                         m = n && t >= t0 -. eps && t <= deadline +. eps && v >= committed)
                       !updates
                in
                if converged then Ok ()
                else
                  Error
                    (Printf.sprintf
                       "slave %d rejoined at t=%.3f with version %d but did not reach \
                        committed version %d by t=%.3f (max_latency=%.3g)"
                       n t0 v_rejoin committed deadline max_latency)
              end
          in
          List.fold_left check_one (Ok ()) (List.rev !recoveries)
        end);
  }

(* -- adversary invariants --------------------------------------------- *)

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

(* Attribute a Pledge_verified event to the attack that provoked it.
   Retries reuse the read's request id, so (client, slave, request)
   alone is ambiguous: a rejected lie followed by an honest retry to
   the same slave produces an OK verification under the same triple.
   The first verification of the triple inside
   [launch_time, issue_time + read_timeout) is unambiguous, though:
   a retry can only be verified inside that window after an earlier
   rejection of the attacked attempt (which then comes first), because
   absent a reply the client waits out the full timeout, which ends
   the window.  A launch with no verification in its window (reply
   lost to a latency tail) is simply not judged. *)
let attack_verification events ~issue_times ~read_timeout (slave, client, request, t0) =
  match Hashtbl.find_opt issue_times (client, request) with
  | None -> None
  | Some issued ->
    let window_end = issued +. read_timeout -. eps in
    List.find_opt
      (fun (r : Trace.record) ->
        r.Trace.time >= t0 -. eps
        && r.Trace.time < window_end
        &&
        match r.Trace.event with
        | Event.Pledge_verified { client = c; slave = s; request = q; _ } ->
          c = client && s = slave && q = request
        | _ -> false)
      events

let issue_times_of events =
  let issued = Hashtbl.create 64 in
  List.iter
    (fun (r : Trace.record) ->
      match r.Trace.event with
      | Event.Read_issued { client; request; _ } ->
        if not (Hashtbl.mem issued (client, request)) then
          Hashtbl.add issued (client, request) r.Trace.time
      | _ -> ())
    events;
  issued

let launches_of events ~mode_prefix =
  List.filter_map
    (fun (r : Trace.record) ->
      match r.Trace.event with
      | Event.Attack_launched { slave; mode; client; request }
        when starts_with ~prefix:mode_prefix mode ->
        Some (slave, client, request, r.Trace.time)
      | _ -> None)
    events

let replay_rejection =
  {
    name = "replay-rejection";
    doc =
      "with read nonces on, a replayed pledge delivered in time is rejected, and the \
       rejection names the nonce mismatch";
    check =
      (fun result ->
        let s = result.Harness.scenario in
        if not s.Scenario.read_nonces then Ok ()
        else begin
          let events = events_of result in
          let launches = launches_of events ~mode_prefix:"replay-pledge" in
          if launches = [] then Ok ()
          else begin
            let issue_times = issue_times_of events in
            let read_timeout =
              Secrep_core.Config.default.Secrep_core.Config.read_timeout_factor
              *. s.Scenario.max_latency
            in
            List.fold_left
              (fun acc ((slave, client, request, t0) as launch) ->
                match acc with
                | Error _ -> acc
                | Ok () -> (
                  match
                    attack_verification events ~issue_times ~read_timeout launch
                  with
                  | None -> Ok ()
                  | Some r -> (
                    match r.Trace.event with
                    | Event.Pledge_verified { ok = true; _ } ->
                      Error
                        (Printf.sprintf
                           "slave %d replayed a pledge to client %d (request %d, \
                            t=%.3f) and the client verified it OK at t=%.3f despite \
                            read nonces being on"
                           slave client request t0 r.Trace.time)
                    | Event.Pledge_verified { ok = false; reason; _ } ->
                      if starts_with ~prefix:"nonce" reason then Ok ()
                      else
                        Error
                          (Printf.sprintf
                             "slave %d replayed a pledge to client %d (request %d, \
                              t=%.3f); it was rejected at t=%.3f but for %S, not the \
                              nonce mismatch"
                             slave client request t0 r.Trace.time reason)
                    | _ -> Ok ())))
              (Ok ()) launches
          end
        end);
  }

let equivocation_detection =
  {
    name = "equivocation-detection";
    doc =
      "an equivocating slave whose lie was verified OK is flagged by the end of the \
       run (audit on, uniform sampling, clean net, no chaos, no audit overload)";
    check =
      (fun result ->
        let s = result.Harness.scenario in
        let overloaded =
          List.exists
            (fun (r : Trace.record) ->
              match r.Trace.event with Event.Audit_overload _ -> true | _ -> false)
            (events_of result)
        in
        if
          (not s.Scenario.audit)
          || s.Scenario.audit_adaptive || Scenario.lossy s || Scenario.has_chaos s
          || overloaded
        then Ok ()
        else begin
          let events = events_of result in
          let launches = launches_of events ~mode_prefix:"equivocate" in
          if launches = [] then Ok ()
          else begin
            let issue_times = issue_times_of events in
            let read_timeout =
              Secrep_core.Config.default.Secrep_core.Config.read_timeout_factor
              *. s.Scenario.max_latency
            in
            let flagged = accused_slaves result in
            List.fold_left
              (fun acc ((slave, client, request, t0) as launch) ->
                match acc with
                | Error _ -> acc
                | Ok () -> (
                  match
                    attack_verification events ~issue_times ~read_timeout launch
                  with
                  | Some { Trace.event = Event.Pledge_verified { ok = true; _ }; _ }
                    when not (List.mem slave flagged) ->
                    Error
                      (Printf.sprintf
                         "slave %d equivocated to client %d (request %d, t=%.3f), the \
                          lie was verified OK, and the slave was never flagged by \
                          double-check, audit or exclusion"
                         slave client request t0)
                  | _ -> Ok ()))
              (Ok ()) launches
          end
        end);
  }

let adaptive_no_worse =
  {
    name = "adaptive-no-worse";
    doc =
      "under common random numbers, suspicion-weighted sampling detects no later than \
       uniform sampling, and with a lone liar catches at least as many lies";
    check =
      (fun result ->
        let module Audit_core = Secrep_core.Audit_core in
        let module Prng = Secrep_crypto.Prng in
        let pledges = result.Harness.pledges in
        if pledges = [] then Ok ()
        else begin
          let s = result.Harness.scenario in
          let rng =
            Prng.create
              ~seed:(Int64.add (Int64.of_int s.Scenario.sys_seed) 0x5EC4E9L)
          in
          let draws =
            Array.init (List.length pledges) (fun _ -> Prng.float rng)
          in
          let fraction = 0.5 in
          let run adaptive =
            Audit_core.run_sampled ~draws ~fraction ~adaptive
              ~slave_public:result.Harness.slave_public ~reexec:result.Harness.reexec
              pledges
          in
          let uni = run false and ada = run true in
          if uni.Audit_core.first_caught <> ada.Audit_core.first_caught then
            Error
              (Printf.sprintf
                 "first detection diverged under common random numbers: uniform \
                  sampling caught at stream index %s, adaptive at %s (they share every \
                  decision until the first catch)"
                 (match uni.Audit_core.first_caught with
                 | Some i -> string_of_int i
                 | None -> "never")
                 (match ada.Audit_core.first_caught with
                 | Some i -> string_of_int i
                 | None -> "never"))
          else begin
            let naive =
              Audit_core.run_naive ~slave_public:result.Harness.slave_public
                ~reexec:result.Harness.reexec pledges
            in
            let liars =
              List.sort_uniq compare
                (List.filter_map
                   (fun (p, v) ->
                     if Audit_core.equal_verdict v Audit_core.Caught then
                       Some p.Secrep_core.Pledge.slave_id
                     else None)
                   (List.combine pledges naive))
            in
            if List.length liars <= 1 && ada.Audit_core.caught < uni.Audit_core.caught
            then
              Error
                (Printf.sprintf
                   "with a lone lying slave, adaptive sampling caught %d lying \
                    pledge(s) but uniform sampling caught %d on the same draws — the \
                    liar's audit probability should never drop below the uniform \
                    fraction"
                   ada.Audit_core.caught uni.Audit_core.caught)
            else Ok ()
          end
        end);
  }

let differential_audit =
  {
    name = "differential-audit";
    doc =
      "the dedup/batched auditor and the naive per-pledge auditor emit identical \
       verdicts over the run's recorded pledge stream";
    check =
      (fun result ->
        let module Audit_core = Secrep_core.Audit_core in
        let pledges = result.Harness.pledges in
        let naive =
          Audit_core.run_naive ~slave_public:result.Harness.slave_public
            ~reexec:result.Harness.reexec pledges
        in
        let dedup, _stats =
          Audit_core.run_dedup ~slave_public:result.Harness.slave_public
            ~reexec:result.Harness.reexec pledges
        in
        if List.length naive <> List.length dedup then
          Error
            (Printf.sprintf
               "verdict count mismatch: naive produced %d, dedup produced %d (both \
                audited the same %d pledges)"
               (List.length naive) (List.length dedup) (List.length pledges))
        else
          let rec compare_at i = function
            | [] -> Ok ()
            | (vn, vd) :: rest ->
              if Audit_core.equal_verdict vn vd then compare_at (i + 1) rest
              else
                let pledge = List.nth pledges i in
                Error
                  (Printf.sprintf
                     "pledge #%d (slave %d, version %d): naive auditor says %s, dedup \
                      auditor says %s"
                     i pledge.Secrep_core.Pledge.slave_id
                     (Secrep_core.Pledge.version pledge)
                     (Format.asprintf "%a" Audit_core.pp_verdict vn)
                     (Format.asprintf "%a" Audit_core.pp_verdict vd))
          in
          compare_at 0 (List.combine naive dedup));
  }

let parallel_determinism =
  {
    name = "parallel-determinism";
    doc =
      "re-running a sharded scenario on the parallel domain scheduler yields \
       byte-identical per-shard event streams to the sequential scheduler";
    check =
      (fun result ->
        let s = result.Harness.scenario in
        if s.Scenario.n_shards <= 1 then Ok ()
        else begin
          (* Full differential: both schedulers replay the scenario from
             scratch, so the comparison covers everything downstream of
             the scheduler — PRNG draws, chaos fan-out, rebalances,
             auditor budgets — not just the merge order. *)
          let digests domains =
            List.map Harness.events_digest (Harness.run_sharded ~domains s)
          in
          let sequential = digests 0 and parallel = digests 2 in
          let rec walk i = function
            | [], [] -> Ok ()
            | d0 :: r0, d2 :: r2 ->
              if String.equal d0 d2 then walk (i + 1) (r0, r2)
              else
                Error
                  (Printf.sprintf
                     "shard %d diverged under the parallel scheduler: sequential \
                      stream digest %s, 2-domain digest %s"
                     i d0 d2)
            | l0, l2 ->
              Error
                (Printf.sprintf
                   "scheduler runs disagree on shard count from shard %d: sequential \
                    has %d more, parallel has %d more"
                   i (List.length l0) (List.length l2))
          in
          walk 0 (sequential, parallel)
        end);
  }

let alert_coverage =
  {
    name = "alert-coverage";
    doc =
      "every violated invariant with an online SLO counterpart is covered by a raised \
       alert of the matching rule";
    check =
      (fun result ->
        let module Slo = Secrep_monitor.Slo in
        let s = result.Harness.scenario in
        (* Mirror the harness's config so the monitor judges the run by
           the thresholds it actually ran under. *)
        let config =
          Secrep_core.Config.validate_exn
            {
              Secrep_core.Config.default with
              Secrep_core.Config.max_latency = s.Scenario.max_latency;
              keepalive_period = s.Scenario.keepalive_period;
              double_check_probability = s.Scenario.double_check_p;
              audit_enabled = s.Scenario.audit;
              pledge_batch_size = s.Scenario.pledge_batch;
            }
        in
        let violated =
          List.filter_map
            (fun c ->
              match Slo.rule_for_invariant c.name with
              | None -> None
              | Some rule -> (
                match c.check result with
                | Ok () -> None
                | Error msg -> Some (c.name, rule, msg)))
            [
              detection;
              no_false_accusation;
              staleness;
              write_spacing;
              availability;
              recovery_convergence;
            ]
        in
        if violated = [] then Ok ()
        else begin
          let slo = Slo.create ~config:(Slo.config config) () in
          List.iter (Slo.observe slo) (events_of result);
          Slo.finalize slo ~now:result.Harness.end_time;
          let uncovered =
            List.filter (fun (_, rule, _) -> not (Slo.was_raised slo rule)) violated
          in
          match uncovered with
          | [] -> Ok ()
          | (inv, rule, msg) :: _ ->
            Error
              (Printf.sprintf
                 "invariant %s was violated but the SLO monitor never raised the %S alert \
                  (raised: %s) — underlying violation: %s"
                 inv rule
                 (match Slo.raised_rules slo with
                 | [] -> "none"
                 | rs -> String.concat ", " rs)
                 msg)
        end);
  }

let all =
  [
    detection;
    no_false_accusation;
    staleness;
    write_spacing;
    pledge_validity;
    availability;
    recovery_convergence;
    differential_audit;
    replay_rejection;
    equivocation_detection;
    adaptive_no_worse;
    parallel_determinism;
    alert_coverage;
  ]

let named names =
  match names with
  | [] -> Ok all
  | _ ->
    let resolve name =
      match List.find_opt (fun c -> c.name = name) all with
      | Some c -> Ok c
      | None ->
        Error
          (Printf.sprintf "unknown invariant %S (known: %s)" name
             (String.concat ", " (List.map (fun c -> c.name) all)))
    in
    List.fold_right
      (fun name acc ->
        match (resolve name, acc) with
        | Ok c, Ok cs -> Ok (c :: cs)
        | Error e, _ -> Error e
        | _, Error e -> Error e)
      names (Ok [])

let check_all checkers result =
  List.fold_left
    (fun acc c ->
      match acc with
      | Error _ -> acc
      | Ok () -> (
        match c.check result with
        | Ok () -> Ok ()
        | Error msg -> Error (Printf.sprintf "[%s] %s" c.name msg)))
    (Ok ()) checkers
