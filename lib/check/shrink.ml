type 'a t = 'a -> 'a Seq.t

let nothing _ = Seq.empty

let int_towards ~target n =
  if n = target then Seq.empty
  else
    (* diff halves toward 0, so candidates move from [target] toward
       [n]; built in that order, the boldest jump is tried first. *)
    let rec build diff acc = if diff = 0 then List.rev acc else build (diff / 2) ((n - diff) :: acc) in
    List.to_seq (build (n - target) [])

let remove_at i l = List.filteri (fun j _ -> j <> i) l
let replace_at i x l = List.mapi (fun j y -> if j = i then x else y) l

let list ?(elt = nothing) l =
  match l with
  | [] -> Seq.empty
  | _ ->
    let n = List.length l in
    let halves =
      if n >= 2 then
        let half = n / 2 in
        [ List.filteri (fun i _ -> i < half) l; List.filteri (fun i _ -> i >= half) l ]
      else []
    in
    let drop_one = List.init n (fun i -> remove_at i l) in
    let structural = List.to_seq (([] :: halves) @ drop_one) in
    (* Element-wise shrinks come last: only once the list cannot get
       any shorter is it worth simplifying what is left. *)
    let elementwise =
      Seq.concat_map
        (fun i -> Seq.map (fun x -> replace_at i x l) (elt (List.nth l i)))
        (Seq.init n Fun.id)
    in
    Seq.append structural elementwise

let pair sa sb (a, b) =
  Seq.append (Seq.map (fun a' -> (a', b)) (sa a)) (Seq.map (fun b' -> (a, b')) (sb b))
