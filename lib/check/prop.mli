(** Property runner with greedy counterexample shrinking.

    Each run [i] of a campaign gets its own seed [base + i]; the value
    is generated from a fresh PRNG on that seed, so a reported failure
    replays exactly with [check ~runs:1 ~seed:run_seed ...] — or, for
    scenario properties, with the fuzz CLI's [--seed] flag. *)

type 'a failure = {
  seed : int64;  (** per-run seed that regenerates [original] *)
  run : int;  (** 0-based index within the campaign *)
  original : 'a;
  reason : string;
  shrunk : 'a;  (** = [original] when no smaller value failed *)
  shrunk_reason : string;
  shrink_steps : int;  (** accepted shrinks *)
  shrink_attempts : int;  (** candidates evaluated *)
}

type 'a result_ = Pass of { runs : int } | Fail of 'a failure

val check :
  ?runs:int ->
  ?max_shrink_steps:int ->
  seed:int64 ->
  gen:'a Gen.t ->
  shrink:'a Shrink.t ->
  ('a -> (unit, string) result) ->
  'a result_
(** Defaults: [runs = 100], [max_shrink_steps = 200].  The property
    must be deterministic (all randomness via the generated value) or
    shrinking and replay are meaningless. *)
