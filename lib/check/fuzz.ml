type outcome = Passed of { runs : int } | Failed of Scenario.t Prop.failure

let run ?(runs = 100) ?(max_shrink_steps = 200) ?(invariants = Invariant.all) ~seed () =
  let prop scenario = Invariant.check_all invariants (Harness.run scenario) in
  match
    Prop.check ~runs ~max_shrink_steps ~seed ~gen:Scenario.gen ~shrink:Scenario.shrink prop
  with
  | Prop.Pass { runs } -> Passed { runs }
  | Prop.Fail f -> Failed f

let replay_hint (f : Scenario.t Prop.failure) =
  Printf.sprintf "secrep_sim_cli fuzz --seed %Ld --runs 1" f.Prop.seed

let pp_outcome fmt = function
  | Passed { runs } ->
    Format.fprintf fmt "fuzz: %d run(s), all invariants held" runs
  | Failed f ->
    Format.fprintf fmt
      "@[<v>fuzz: FAILED on run %d (seed %Ld)@,\
       @,\
       violation: %s@,\
       @,\
       original %a@,\
       @,\
       shrunk (%d step(s), %d candidate(s) tried): %s@,\
       shrunk %a@,\
       @,\
       replay: %s@]"
      f.Prop.run f.Prop.seed f.Prop.reason Scenario.pp f.Prop.original f.Prop.shrink_steps
      f.Prop.shrink_attempts f.Prop.shrunk_reason Scenario.pp f.Prop.shrunk
      (replay_hint f)
