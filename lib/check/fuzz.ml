type outcome = Passed of { runs : int } | Failed of Scenario.t Prop.failure

let run ?(runs = 100) ?(max_shrink_steps = 200) ?(invariants = Invariant.all) ?shards
    ?slaves_per_master ~seed () =
  (* CLI pins: applied after generation AND after every shrink step so
     a pinned campaign never drifts off the requested topology. *)
  let pin s =
    let s =
      match shards with None -> s | Some k -> { s with Scenario.n_shards = k }
    in
    match slaves_per_master with
    | None -> s
    | Some r -> { s with Scenario.slaves_per_master = r }
  in
  let gen = Gen.map pin Scenario.gen in
  let shrink s = Seq.map pin (Scenario.shrink s) in
  (* Every shard is judged independently against the full invariant
     set.  [n_shards = 1] takes the classic single-system path, so the
     shrinker's pull toward one shard lands back on the old prop. *)
  let prop scenario =
    let results = Harness.run_sharded scenario in
    let many = List.length results > 1 in
    List.fold_left
      (fun (acc, i) result ->
        let acc =
          match acc with
          | Error _ -> acc
          | Ok () -> (
            match Invariant.check_all invariants result with
            | Ok () -> Ok ()
            | Error msg ->
              Error (if many then Printf.sprintf "[shard %d] %s" i msg else msg))
        in
        (acc, i + 1))
      (Ok (), 0) results
    |> fst
  in
  match
    Prop.check ~runs ~max_shrink_steps ~seed ~gen ~shrink prop
  with
  | Prop.Pass { runs } -> Passed { runs }
  | Prop.Fail f -> Failed f

let replay_hint (f : Scenario.t Prop.failure) =
  Printf.sprintf "secrep_sim_cli fuzz --seed %Ld --runs 1" f.Prop.seed

let pp_outcome fmt = function
  | Passed { runs } ->
    Format.fprintf fmt "fuzz: %d run(s), all invariants held" runs
  | Failed f ->
    Format.fprintf fmt
      "@[<v>fuzz: FAILED on run %d (seed %Ld)@,\
       @,\
       violation: %s@,\
       @,\
       original %a@,\
       @,\
       shrunk (%d step(s), %d candidate(s) tried): %s@,\
       shrunk %a@,\
       @,\
       replay: %s@]"
      f.Prop.run f.Prop.seed f.Prop.reason Scenario.pp f.Prop.original f.Prop.shrink_steps
      f.Prop.shrink_attempts f.Prop.shrunk_reason Scenario.pp f.Prop.shrunk
      (replay_hint f)
