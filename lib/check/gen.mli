(** Seeded value generators.

    A generator is just a function of a {!Secrep_crypto.Prng.t}; the
    same seed always produces the same value, which is what makes
    fuzz-campaign failures replayable from a one-line seed.  The
    combinators draw from the generator argument in a fixed order, so
    composite generators stay deterministic too. *)

type 'a t = Secrep_crypto.Prng.t -> 'a

val return : 'a -> 'a t
val map : ('a -> 'b) -> 'a t -> 'b t
val bind : 'a t -> ('a -> 'b t) -> 'b t
val both : 'a t -> 'b t -> ('a * 'b) t

val int_range : int -> int -> int t
(** [int_range lo hi] is uniform over the inclusive range; [lo <= hi]. *)

val float_range : float -> float -> float t
val bool : bool t

val choose : 'a list -> 'a t
(** Uniform element of a non-empty list. *)

val oneof : 'a t list -> 'a t
(** Pick one of the generators uniformly, then run it. *)

val frequency : (int * 'a t) list -> 'a t
(** Weighted {!oneof}; weights must be positive. *)

val list_size : int t -> 'a t -> 'a list t
(** Length drawn first, then elements left to right. *)

val pair : 'a t -> 'b t -> ('a * 'b) t
val triple : 'a t -> 'b t -> 'c t -> ('a * 'b * 'c) t

val run : seed:int64 -> 'a t -> 'a
(** Run the generator on a fresh PRNG seeded with [seed]. *)
