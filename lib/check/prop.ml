type 'a failure = {
  seed : int64;
  run : int;
  original : 'a;
  reason : string;
  shrunk : 'a;
  shrunk_reason : string;
  shrink_steps : int;
  shrink_attempts : int;
}

type 'a result_ = Pass of { runs : int } | Fail of 'a failure

let shrink_loop ~max_shrink_steps ~shrink prop x reason =
  let steps = ref 0 in
  let attempts = ref 0 in
  let cur = ref x in
  let cur_reason = ref reason in
  let progressed = ref true in
  while !progressed && !steps < max_shrink_steps do
    progressed := false;
    (* Greedy: walk the candidate sequence (boldest first) and restart
       from the first one that still fails. *)
    let rec scan s =
      match s () with
      | Seq.Nil -> ()
      | Seq.Cons (candidate, rest) -> (
        incr attempts;
        match prop candidate with
        | Ok () -> scan rest
        | Error r ->
          cur := candidate;
          cur_reason := r;
          incr steps;
          progressed := true)
    in
    scan (shrink !cur)
  done;
  (!cur, !cur_reason, !steps, !attempts)

let check ?(runs = 100) ?(max_shrink_steps = 200) ~seed ~gen ~shrink prop =
  let rec loop i =
    if i >= runs then Pass { runs }
    else begin
      let run_seed = Int64.add seed (Int64.of_int i) in
      let x = Gen.run ~seed:run_seed gen in
      match prop x with
      | Ok () -> loop (i + 1)
      | Error reason ->
        let shrunk, shrunk_reason, shrink_steps, shrink_attempts =
          shrink_loop ~max_shrink_steps ~shrink prop x reason
        in
        Fail
          {
            seed = run_seed;
            run = i;
            original = x;
            reason;
            shrunk;
            shrunk_reason;
            shrink_steps;
            shrink_attempts;
          }
    end
  in
  loop 0
