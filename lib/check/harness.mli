(** Deterministic scenario execution.

    Builds a {!Secrep_core.System.t} from a {!Scenario.t}, subscribes
    to the live trace stream (so no event is lost to the ring buffer),
    schedules the scenario's timed operations, runs the simulator past
    the point where every write has committed and the auditor has
    caught up, and returns the complete typed event stream plus every
    accepted read labelled against the ground-truth oracle.

    Everything is seeded from the scenario, so two runs of the same
    scenario produce bit-identical results. *)

type accepted_read = {
  time : float;  (** simulated time the client accepted *)
  client : int;
  slave : int;  (** the slave that served it *)
  version : int;  (** content version the result was computed at *)
  wrong : bool;  (** oracle says the answer is incorrect *)
}

type run_result = {
  scenario : Scenario.t;  (** the normalized scenario that actually ran *)
  events : Secrep_sim.Trace.record list;  (** complete stream, oldest first *)
  accepted : accepted_read list;  (** in completion order *)
  end_time : float;
  pledges : Secrep_core.Pledge.t list;
      (** every pledge delivered to an auditor, in delivery order —
          the input stream for the offline audit drivers *)
  reexec : version:int -> Secrep_store.Query.t -> string option;
      (** ground-truth re-execution oracle over the run's version
          history ({!Secrep_core.System.reexec_digest}) *)
  slave_public : int -> Secrep_crypto.Sig_scheme.public option;
      (** public keys of the run's slaves, for offline signature checks *)
}

val run : Scenario.t -> run_result
(** Chaos windows from the scenario are armed via
    {!Secrep_chaos.Injector.apply} before the first operation fires;
    the run horizon covers the last heal plus a convergence margin and
    every read's worst-case retry ladder. *)

val run_sharded : ?domains:int -> Scenario.t -> run_result list
(** Execute the scenario over [n_shards] content items and return one
    result per shard, each carrying the slice of the scenario that
    shard saw (its own faults and ops; chaos windows are global).
    [domains] selects the deployment scheduler (0/1 sequential, [> 1]
    the parallel worker pool); every setting must produce byte-identical
    per-shard streams — the [parallel-determinism] invariant holds the
    harness to that.

    [n_shards = 1] is exactly [[run scenario]] — same code path, same
    stream — so the sharded prop degenerates to the classic one.  With
    [K > 1] the scenario runs on a {!Secrep_shard.Deployment}: ops
    route to shard [key mod K], adversarial faults to shard
    [slave mod K], and chaos windows become cross-shard (slave cuts
    and churn act on pool hosts, hitting every co-located replica;
    auditor cuts and network degradation hit all shards). *)

val schedule_of_chaos : Scenario.chaos list -> Secrep_chaos.Schedule.t
(** The disrupt/heal entry pairs a scenario's chaos windows expand to.
    Exposed for the CLI, which reuses it to print and export
    schedules. *)

val events_digest : run_result -> string
(** SHA-1 over the rendered event stream (time, source, event); equal
    digests mean equal streams.  Used by the determinism tests and the
    replay documentation. *)
